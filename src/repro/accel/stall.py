"""Stall controller — the timing-channel fix of Fig. 8.

Baseline: any output backpressure stalls the whole pipeline, so one
user's (reader's) behaviour modulates every other user's latency — the
covert channel of §3.1.

Protected: the controller computes the **meet** (⊓C) of the
confidentiality levels of all *valid* pipeline stages and grants the
stall only when the requester's confidentiality flows to that meet:
``C(ℓ(stall_req)) ⊑C C(ℓ(stall))``.  A stage without valid data
contributes the identity of the meet (⊤C = all principals).  When the
stall is denied, the output is captured by the holding buffer instead
(:mod:`repro.accel.output_buffer`).

The module is parameterised by stage count so the full mechanism can be
statically verified at a small configuration (the 30-stage instance is
exercised dynamically) — see DESIGN.md §5.
"""

from __future__ import annotations

from typing import List

from ..hdl.module import Module
from ..hdl.nodes import Node, lit, mux
from ..ifc.label import Label
from .common import LATTICE, TAG_WIDTH
from .hwlabels import hw_conf_leq
from .taglabels import request_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
_N = len(LATTICE.principals)


class StallController(Module):
    """Grants or denies pipeline stalls based on the stage-label meet."""

    def __init__(self, n_stages: int, protected: bool, name: str = "stallctl"):
        super().__init__(name)
        self.n_stages = n_stages
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        self.req_tag = self.input("req_tag", TAG_WIDTH, label=ctrl)
        self.stall_req = self.input(
            "stall_req", 1,
            label=request_label(self.req_tag) if protected else None,
        )

        self.stage_valid: List = []
        self.stage_conf: List = []
        for i in range(n_stages):
            self.stage_valid.append(self.input(f"v{i}", 1, label=ctrl))
            self.stage_conf.append(self.input(f"c{i}", _N, label=ctrl))

        # Fig. 8: meet over the valid stages; empty stages are ⊤C.
        # Reduced as a balanced AND tree so the grant logic adds only
        # log2(stages) levels — off the AES critical path.
        full = (1 << _N) - 1
        contribs: List[Node] = [
            mux(self.stage_valid[i], self.stage_conf[i], lit(full, _N))
            for i in range(n_stages)
        ]
        while len(contribs) > 1:
            nxt = []
            for i in range(0, len(contribs) - 1, 2):
                nxt.append(contribs[i] & contribs[i + 1])
            if len(contribs) % 2:
                nxt.append(contribs[-1])
            contribs = nxt
        meet = contribs[0]
        self.meet_o = self.output("meet_o", _N, label=ctrl)
        self.meet_o <<= meet

        self.stall = self.output(
            "stall", 1,
            label=request_label(self.req_tag) if protected else None,
        )
        self.allowed = self.output("allowed", 1, label=ctrl, default=1)
        if protected:
            allowed = hw_conf_leq(self.req_tag[2 * _N - 1:_N], meet)
            self.allowed <<= allowed
            self.stall <<= self.stall_req & allowed
        else:
            self.stall <<= self.stall_req
