"""AES round transformations as hardware expression trees.

These builders take a 128-bit expression and return the transformed
128-bit expression; they are the combinational bodies of the pipeline
stage modules.  Byte order matches :mod:`repro.aes.rounds`: state byte
``i`` occupies bits ``[127-8i : 120-8i]`` (``state[0]`` is the most
significant byte, FIPS column-major order ``state[r + 4c]``).
"""

from __future__ import annotations

from typing import Callable, List

from ..hdl.memory import Mem
from ..hdl.nodes import Const, Node, cat, mux


def get_byte(data: Node, i: int) -> Node:
    """State byte ``i`` (0 is most significant)."""
    hi = 127 - 8 * i
    return data[hi:hi - 7]


def from_bytes(parts: List[Node]) -> Node:
    """Assemble 16 byte expressions (state order) into a 128-bit value."""
    if len(parts) != 16:
        raise ValueError("need exactly 16 bytes")
    return cat(*parts)


def map_bytes(data: Node, fn: Callable[[Node], Node]) -> Node:
    return from_bytes([fn(get_byte(data, i)) for i in range(16)])


def sbox_lookup_expr(data: Node, rom: Mem) -> Node:
    """SubBytes (or InvSubBytes) via 16 parallel ROM lookups."""
    return map_bytes(data, rom.read)


def shift_rows_expr(data: Node) -> Node:
    """Row r rotates left by r: out[r+4c] = in[r + 4((c+r)%4)]."""
    parts = [None] * 16
    for r in range(4):
        for c in range(4):
            parts[r + 4 * c] = get_byte(data, r + 4 * ((c + r) % 4))
    return from_bytes(parts)  # type: ignore[arg-type]


def inv_shift_rows_expr(data: Node) -> Node:
    """Row r rotates right by r: out[r + 4((c+r)%4)] = in[r+4c]."""
    parts = [None] * 16
    for r in range(4):
        for c in range(4):
            parts[r + 4 * ((c + r) % 4)] = get_byte(data, r + 4 * c)
    return from_bytes(parts)  # type: ignore[arg-type]


def xtime_expr(b: Node) -> Node:
    """Multiply a byte by 2 in GF(2^8): shift left, conditional reduce."""
    shifted = b << 1  # width stays 8; the MSB falls off
    return shifted ^ mux(b[7], Const(0x1B, 8), Const(0, 8))


def gf_mults(b: Node):
    """Shared x2/x4/x8 ladder for one byte; returns (x1, x2, x4, x8)."""
    x2 = xtime_expr(b)
    x4 = xtime_expr(x2)
    x8 = xtime_expr(x4)
    return b, x2, x4, x8


def mix_columns_expr(data: Node) -> Node:
    """MixColumns: each column multiplied by the circulant (2 3 1 1)."""
    out = [None] * 16
    for c in range(4):
        col = [get_byte(data, 4 * c + r) for r in range(4)]
        m2 = [xtime_expr(b) for b in col]
        m3 = [m2[r] ^ col[r] for r in range(4)]
        out[4 * c + 0] = m2[0] ^ m3[1] ^ col[2] ^ col[3]
        out[4 * c + 1] = col[0] ^ m2[1] ^ m3[2] ^ col[3]
        out[4 * c + 2] = col[0] ^ col[1] ^ m2[2] ^ m3[3]
        out[4 * c + 3] = m3[0] ^ col[1] ^ col[2] ^ m2[3]
    return from_bytes(out)  # type: ignore[arg-type]


def inv_mix_columns_expr(data: Node) -> Node:
    """InvMixColumns: circulant (14 11 13 9), built from a shared x2/x4/x8
    ladder per byte."""
    out = [None] * 16
    for c in range(4):
        col = [get_byte(data, 4 * c + r) for r in range(4)]
        lad = [gf_mults(b) for b in col]
        # mul9 = x8^x1, mul11 = x8^x2^x1, mul13 = x8^x4^x1, mul14 = x8^x4^x2
        m9 = [x8 ^ x1 for (x1, _x2, _x4, x8) in lad]
        m11 = [x8 ^ x2 ^ x1 for (x1, x2, _x4, x8) in lad]
        m13 = [x8 ^ x4 ^ x1 for (x1, _x2, x4, x8) in lad]
        m14 = [x8 ^ x4 ^ x2 for (_x1, x2, x4, x8) in lad]
        out[4 * c + 0] = m14[0] ^ m11[1] ^ m13[2] ^ m9[3]
        out[4 * c + 1] = m9[0] ^ m14[1] ^ m11[2] ^ m13[3]
        out[4 * c + 2] = m13[0] ^ m9[1] ^ m14[2] ^ m11[3]
        out[4 * c + 3] = m11[0] ^ m13[1] ^ m9[2] ^ m14[3]
    return from_bytes(out)  # type: ignore[arg-type]


def add_round_key_expr(data: Node, round_key: Node) -> Node:
    return data ^ round_key


def rot_word_expr(word: Node) -> Node:
    """Rotate a 32-bit word left by one byte (key schedule)."""
    return cat(word[23:0], word[31:24])


def sub_word_expr(word: Node, rom: Mem) -> Node:
    """S-box each byte of a 32-bit word (key schedule)."""
    return cat(
        rom.read(word[31:24]),
        rom.read(word[23:16]),
        rom.read(word[15:8]),
        rom.read(word[7:0]),
    )
