"""repro.accel — the baseline and protected AES accelerators (Fig. 4).

Everything is written in the :mod:`repro.hdl` eDSL: the 30-stage
pipelined E/D datapath with embedded key expansion, the tagged key
scratchpad, stall controller, output buffer, declassifier, configuration
registers, debug peripheral, and round-robin arbiter — plus the
transaction-level :class:`~repro.accel.driver.AcceleratorDriver`.
"""

from .axi import AxiLiteFrontend
from .baseline import AesAcceleratorBaseline
from .common import (
    CMD_CONFIG,
    CMD_DECRYPT,
    CMD_ENCRYPT,
    CMD_LOAD_KEY,
    FREE_TAG,
    KEY_SLOTS,
    LATTICE,
    MASTER_SLOT,
    OP_DEC,
    OP_ENC,
    PIPELINE_ROUNDS,
    PIPELINE_STAGES,
    SCRATCHPAD_CELLS,
    TAG_WIDTH,
    VALID_CELL_TAGS,
    VALID_REQUEST_TAGS,
    master_key_label,
    public_label,
    supervisor_label,
    user_label,
)
from .driver import AcceleratorDriver, Response, make_users
from .key_expand_unit import DEFAULT_MASTER_KEY, KeyExpandUnit
from .mini import BUBBLE_TAG, MiniTaggedPipeline
from .pipeline import AesPipeline
from .protected import AesAcceleratorProtected
from .wide import AesEngineWide, WordSerialKeyExpand

__all__ = [
    "AcceleratorDriver",
    "AesAcceleratorBaseline",
    "AesAcceleratorProtected",
    "AxiLiteFrontend",
    "AesEngineWide",
    "AesPipeline",
    "BUBBLE_TAG",
    "CMD_CONFIG",
    "CMD_DECRYPT",
    "CMD_ENCRYPT",
    "CMD_LOAD_KEY",
    "DEFAULT_MASTER_KEY",
    "FREE_TAG",
    "KEY_SLOTS",
    "KeyExpandUnit",
    "LATTICE",
    "MASTER_SLOT",
    "MiniTaggedPipeline",
    "OP_DEC",
    "OP_ENC",
    "PIPELINE_ROUNDS",
    "PIPELINE_STAGES",
    "Response",
    "WordSerialKeyExpand",
    "SCRATCHPAD_CELLS",
    "TAG_WIDTH",
    "VALID_CELL_TAGS",
    "VALID_REQUEST_TAGS",
    "make_users",
    "master_key_label",
    "public_label",
    "supervisor_label",
    "user_label",
]
