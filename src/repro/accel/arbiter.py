"""Round-robin request arbiter (the "Arbiter" box of Fig. 4).

Four request channels (one per principal slot) share the accelerator's
single command port.  Arbitration metadata is public-trusted: the grant
decision depends only on request presence, in round-robin order, so no
user data influences who wins (checked statically like everything else).
The arbiter stamps the granted channel's *tag* onto the forwarded
request — this is the trusted-issue assumption of the §2.2 threat model:
applications cannot forge their identity.
"""

from __future__ import annotations

from typing import List

from ..hdl.module import Module, when
from ..hdl.nodes import lit, mux_case
from ..ifc.label import Label
from .common import LATTICE, TAG_WIDTH, VALID_REQUEST_TAGS
from .taglabels import data_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
N_PORTS = 4


class RequestArbiter(Module):
    """4-way round-robin arbiter over full command bundles."""

    def __init__(self, protected: bool, name: str = "arbiter"):
        super().__init__(name)
        ctrl = PUB_TRUSTED if protected else None

        self.ready = self.input("ready", 1, label=ctrl)

        self.req_valid: List = []
        self.req_cmd: List = []
        self.req_slot: List = []
        self.req_word: List = []
        self.req_addr: List = []
        self.req_data: List = []
        self.port_tag: List = []
        for i in range(N_PORTS):
            v = self.input(f"v{i}", 1, label=ctrl)
            v.meta["enumerate"] = True
            self.req_valid.append(v)
            self.req_cmd.append(self.input(f"cmd{i}", 2, label=ctrl))
            self.req_slot.append(self.input(f"slot{i}", 2, label=ctrl))
            self.req_word.append(self.input(f"word{i}", 3, label=ctrl))
            self.req_addr.append(self.input(f"addr{i}", 4, label=ctrl))
            tag = self.input(f"tag{i}", TAG_WIDTH, label=ctrl)
            tag.meta["enumerate"] = True
            tag.meta["enum_domain"] = VALID_REQUEST_TAGS
            self.port_tag.append(tag)
            self.req_data.append(self.input(
                f"data{i}", 128,
                label=data_label(tag, domain=VALID_REQUEST_TAGS)
                if protected else None,
            ))

        self.rr = self.reg("rr", 2, label=ctrl)
        self.rr.meta["enumerate"] = True

        # grant: first requesting port at or after the round-robin pointer
        grant = self.wire("grant", 2, label=ctrl)
        grant_valid = self.wire("grant_valid", 1, label=ctrl)
        cases = []
        for offset in range(N_PORTS):
            # port index (rr + offset) mod 4 — select expression per offset
            idx = (self.rr + lit(offset, 2)).trunc(2)
            v = mux_case(lit(0, 1), [
                (idx.eq(i), self.req_valid[i]) for i in range(N_PORTS)
            ])
            cases.append((v, idx))
        grant <<= mux_case(lit(0, 2), cases)
        grant_valid <<= mux_case(lit(0, 1), [(v, lit(1, 1)) for v, _ in cases])

        self.grants = []
        for i in range(N_PORTS):
            g = self.output(f"grant{i}", 1, label=ctrl, default=0)
            g <<= grant_valid & self.ready & grant.eq(i)
            self.grants.append(g)

        with when(grant_valid & self.ready):
            self.rr <<= (grant + 1).trunc(2)

        def pick(sources, width):
            return mux_case(lit(0, width), [
                (grant.eq(i), sources[i]) for i in range(N_PORTS)
            ])

        self.out_valid = self.output("out_valid", 1, label=ctrl)
        self.out_valid <<= grant_valid
        self.out_cmd = self.output("out_cmd", 2, label=ctrl)
        self.out_cmd <<= pick(self.req_cmd, 2)
        self.out_slot = self.output("out_slot", 2, label=ctrl)
        self.out_slot <<= pick(self.req_slot, 2)
        self.out_word = self.output("out_word", 3, label=ctrl)
        self.out_word <<= pick(self.req_word, 3)
        self.out_addr = self.output("out_addr", 4, label=ctrl)
        self.out_addr <<= pick(self.req_addr, 4)
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl)
        self.out_tag <<= pick(self.port_tag, TAG_WIDTH)
        self.out_data = self.output(
            "out_data", 128,
            label=data_label(self.out_tag, domain=VALID_REQUEST_TAGS)
            if protected else None,
        )
        self.out_data <<= pick(self.req_data, 128)
