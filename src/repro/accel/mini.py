"""Reduced pipeline + stall composition — Fig. 8's static proof.

The full 30-stage accelerator verifies the Fig. 8 mechanism *modularly*
(with one reviewed downgrade at the ``advance`` wire) and *dynamically*
(the covert-channel experiment).  This module closes the remaining gap
for the paper's actual secrets: a chain of generic tagged stages where
the stall request is typed **honestly** — it carries the reader's
confidentiality — and every *data* register's hold path must prove that
whatever controls its timing flows to the block's own level.  With the
meet check in place the checker discharges those obligations with no
downgrade at all; remove the check (``guarded=False``) and the §3.1
covert channel appears as a label error at every data register.

Two deliberate modelling choices, mirroring the paper:

* **Bubbles are ⊤C.**  An empty stage carries the ⊤-confidentiality tag,
  so the Fig. 8 meet is the bitwise AND of the stage conf nibbles — a
  bubble is the identity ("the pipeline does not contain data with low
  confidentiality" counts only real data).  The entering block counts as
  a stage, since a granted stall delays its issue too.
* **Tag values are public metadata.**  The grant inherently reveals
  *which levels occupy the pipeline* (a stall succeeding tells the
  requester nothing below the meet is in flight); like the paper, we
  treat tag/valid state as public control plane, and the tag registers'
  own update timing goes through the same explicit, reviewed downgrade
  as the full design.  The secrets — the data registers — need no
  downgrade.
"""

from __future__ import annotations

from ..hdl.module import Module, when
from ..hdl.nodes import declassify, endorse, lit, mux
from ..ifc.dependent import DependentLabel
from ..ifc.label import Label
from .common import FREE_TAG, LATTICE, TAG_WIDTH, user_label
from .hwlabels import conf_bits, hw_conf_leq
from .taglabels import data_label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
_N = len(LATTICE.principals)

#: Tag of an empty (bubble) stage: ⊤ confidentiality — the identity of
#: the Fig. 8 meet and a label no real reader can match.
BUBBLE_TAG = ((1 << _N) - 1) << _N | ((1 << _N) - 1)

# Reduced-scale domains: two users (Alice/Eve of §3.1), their join, the
# free tag, and the bubble.  The mechanism is identical at any scale; the
# small domain keeps the exhaustive case analysis crisp.
_ALICE = user_label("p0").encode()
_EVE = user_label("p1").encode()
_JOIN = Label.decode(LATTICE, _ALICE).join(Label.decode(LATTICE, _EVE)).encode()
MINI_TAG_DOMAIN = sorted({FREE_TAG, _ALICE, _EVE, _JOIN, BUBBLE_TAG})
MINI_REQUEST_DOMAIN = sorted({_ALICE, _EVE})


def timing_label(tag_sig, domain) -> DependentLabel:
    """Label of a signal allowed to control a block's timing: the block's
    own confidentiality, trusted integrity (backpressure endorsed by the
    interconnect)."""
    def fn(value: int) -> Label:
        decoded = Label.decode(LATTICE, value)
        return Label(LATTICE, decoded.conf, "trusted")

    return DependentLabel(tag_sig, fn, LATTICE, domain=domain)


class MiniTaggedPipeline(Module):
    """N generic tagged stages with honestly-typed stall control."""

    def __init__(self, n_stages: int = 2, guarded: bool = True,
                 name: str = "mini"):
        super().__init__(name)
        self.n_stages = n_stages
        ctrl = PUB_TRUSTED

        self.in_valid = self.input("in_valid", 1, label=ctrl)
        self.in_valid.meta["enumerate"] = True
        self.in_tag = self.input("in_tag", TAG_WIDTH, label=ctrl)
        self.in_tag.meta["enumerate"] = True
        self.in_tag.meta["enum_domain"] = MINI_TAG_DOMAIN
        self.in_data = self.input(
            "in_data", 8,
            label=data_label(self.in_tag, domain=MINI_TAG_DOMAIN),
        )

        # reader-side stall request, carrying the reader's confidentiality
        self.rd_tag = self.input("rd_tag", TAG_WIDTH, label=ctrl)
        self.rd_tag.meta["enumerate"] = True
        self.rd_tag.meta["enum_domain"] = MINI_REQUEST_DOMAIN
        self.stall_req = self.input(
            "stall_req", 1,
            label=timing_label(self.rd_tag, MINI_REQUEST_DOMAIN),
        )
        self.stall_req.meta["enumerate"] = True

        self.tags = []
        self.datas = []
        for i in range(n_stages):
            t = self.reg(f"tag{i}", TAG_WIDTH, init=BUBBLE_TAG, label=ctrl)
            t.meta["enumerate"] = True
            t.meta["enum_domain"] = MINI_TAG_DOMAIN
            d = self.reg(
                f"data{i}", 8, label=data_label(t, domain=MINI_TAG_DOMAIN),
            )
            self.tags.append(t)
            self.datas.append(d)

        entry_tag = mux(self.in_valid, self.in_tag, lit(BUBBLE_TAG, TAG_WIDTH))
        entry_data = mux(self.in_valid, self.in_data, lit(0, 8))

        # Fig. 8 meet: AND over stage conf nibbles (bubbles are identity);
        # the entering block counts too
        meet = conf_bits(entry_tag)
        for t in self.tags:
            meet = meet & conf_bits(t)

        if guarded:
            allowed = hw_conf_leq(conf_bits(self.rd_tag), meet)
            stall = self.stall_req & allowed
        else:
            stall = self.stall_req

        # honest advance for the data path: its label is the requester's,
        # and each data register's obligation discharges via the meet
        advance = ~stall
        # control-plane advance: same value, released through the explicit
        # reviewed downgrade (identical to the full design's advance wire)
        advance_meta = endorse(
            declassify(advance, PUB_TRUSTED, PUB_TRUSTED),
            PUB_TRUSTED, PUB_TRUSTED,
        )

        with when(advance_meta):
            for i in range(n_stages):
                if i == 0:
                    self.tags[0] <<= entry_tag
                else:
                    self.tags[i] <<= self.tags[i - 1]
        with when(advance):
            for i in range(n_stages):
                if i == 0:
                    self.datas[0] <<= entry_data
                else:
                    self.datas[i] <<= self.datas[i - 1]

        last = n_stages - 1
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl)
        self.out_tag <<= self.tags[last]
        self.out_valid = self.output("out_valid", 1, label=ctrl)
        self.out_valid <<= ~self.tags[last].eq(BUBBLE_TAG)
        self.out_data = self.output(
            "out_data", 8,
            label=data_label(self.out_tag, domain=MINI_TAG_DOMAIN),
        )
        self.out_data <<= self.datas[last]
