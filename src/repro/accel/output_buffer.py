"""Output holding buffer — per-principal BRAM FIFOs, no cross-user blocking.

The paper (§3.2.5, §4): "The AES accelerator includes an extra buffer to
hold outputs when the pipeline cannot be stalled when the receiver is
not ready to read the outputs", and Table 2's BRAM overhead comes from
"the security tags stored with the on-chip data buffers" plus "the extra
buffer holding confidential outputs".  This module is both of those: a
memory-backed holding buffer whose entries carry their security tag.

A naive *shared* FIFO here would itself be a covert channel:
head-of-line blocking lets one user's reader delay another user's
responses (our covert-channel experiment demonstrated exactly that on an
early version of this design).  The buffer is therefore *partitioned by
principal*: each of the four principal slots owns a four-entry FIFO
region, selected by the lowest set bit of the response tag's vouch
nibble.  A user who neither reads their output nor is allowed to stall
only ever loses their *own* blocks (``dropped`` counts them) —
availability, never confidentiality.

The tag array is declared as a width-rider on the data array (the tags
are "stored with" the buffer), which is how the FPGA model accounts the
extra BRAM exactly as the paper describes.
"""

from __future__ import annotations

from typing import List

from ..hdl.module import Module, when
from ..hdl.nodes import Node, any_of, cat, lit, mux
from ..ifc.label import Label
from .common import LATTICE, TAG_WIDTH, VALID_REQUEST_TAGS
from .hwlabels import hw_flows_to, integ_bits
from .taglabels import cell_tag_label, data_label, mark_tag_mem

PUB_TRUSTED = Label(LATTICE, "public", "trusted")
_N = len(LATTICE.principals)

#: FIFO entries per principal slot
PER_PRINCIPAL_DEPTH = 4


def _slot_of(tag: Node) -> Node:
    """Principal slot for a tag: lowest set bit of the vouch nibble."""
    vouch = integ_bits(tag)
    index: Node = lit(0, 2)
    for i in reversed(range(_N)):
        index = mux(vouch[i], lit(min(i, 3), 2), index)
    return index


class OutputBuffer(Module):
    """Per-principal output holding FIFOs between pipeline and host."""

    def __init__(self, protected: bool, name: str = "outbuf"):
        super().__init__(name)
        self.depth = _N * PER_PRINCIPAL_DEPTH
        self.protected = protected
        ctrl = PUB_TRUSTED if protected else None

        self.push = self.input("push", 1, label=ctrl)
        self.push.meta["enumerate"] = True
        self.push_tag = self.input("push_tag", TAG_WIDTH, label=ctrl)
        self.push_data = self.input(
            "push_data", 128,
            label=data_label(self.push_tag) if protected else None,
        )
        self.rd_tag = self.input("rd_tag", TAG_WIDTH, label=ctrl)
        self.rd_tag.meta["enumerate"] = True
        self.rd_tag.meta["enum_domain"] = VALID_REQUEST_TAGS
        self.pop = self.input("pop", 1, label=ctrl)
        self.pop.meta["enumerate"] = True

        # storage: one data array with the tag array riding on its width
        if protected:
            self.tagq = self.mem("tagq", self.depth, TAG_WIDTH,
                                 label=PUB_TRUSTED)
            mark_tag_mem(self.tagq)
            self.dataq = self.mem("dataq", self.depth, 128,
                                  label=cell_tag_label(self.tagq))
            self.tagq.meta["width_rider_of"] = self.dataq
        else:
            self.tagq = self.mem("tagq", self.depth, TAG_WIDTH)
            self.dataq = self.mem("dataq", self.depth, 128)
            self.tagq.meta["width_rider_of"] = self.dataq

        # per-principal pointers and occupancy
        ptr_w = max(1, (PER_PRINCIPAL_DEPTH - 1).bit_length())
        self.wptrs: List = []
        self.rptrs: List = []
        self.counts: List = []
        for s in range(_N):
            self.wptrs.append(self.reg(f"wptr{s}", ptr_w, label=ctrl))
            self.rptrs.append(self.reg(f"rptr{s}", ptr_w, label=ctrl))
            c = self.reg(f"count{s}", ptr_w + 1, label=ctrl)
            c.meta["enumerate"] = True
            c.meta["enum_domain"] = range(PER_PRINCIPAL_DEPTH + 1)
            self.counts.append(c)

        wslot = self.wire("wslot", 2, label=ctrl)
        wslot <<= _slot_of(self.push_tag)

        occ = self.wire("occupied", 1, label=ctrl)
        occ <<= any_of(*[
            wslot.eq(s) & self.counts[s].eq(PER_PRINCIPAL_DEPTH)
            for s in range(_N)
        ])
        self.push_blocked = self.output("push_blocked", 1, label=ctrl)
        self.push_blocked <<= self.push & occ
        self.full = self.output("full", 1, label=ctrl)
        self.full <<= occ

        self.dropped_r = self.reg("dropped_r", 8, label=ctrl)
        with when(self.push & occ):
            self.dropped_r <<= self.dropped_r + 1
        self.dropped = self.output("dropped", 8, label=ctrl)
        self.dropped <<= self.dropped_r

        # shared write address signal (correlates the two arrays for the
        # checker and the hardware alike)
        waddr = self.wire("waddr", 4, label=ctrl)
        wptr_sel = self.wire("wptr_sel", ptr_w, label=ctrl, default=0)
        for s in range(_N):
            with when(wslot.eq(s)):
                wptr_sel <<= self.wptrs[s]
        waddr <<= cat(wslot, wptr_sel)

        do_push = self.push & ~occ
        with when(do_push):
            self.dataq.write(waddr, self.push_data, tag=self.push_tag)
            self.tagq.write(waddr, self.push_tag)
            for s in range(_N):
                with when(wslot.eq(s)):
                    self.wptrs[s] <<= self.wptrs[s] + 1

        # read side: the polling reader drains its own slot's FIFO head
        rslot = self.wire("rslot", 2, label=ctrl)
        rslot <<= _slot_of(self.rd_tag)
        rptr_sel = self.wire("rptr_sel", ptr_w, label=ctrl, default=0)
        nonempty = self.wire("head_valid", 1, label=ctrl, default=0)
        for s in range(_N):
            with when(rslot.eq(s)):
                rptr_sel <<= self.rptrs[s]
                nonempty <<= ~self.counts[s].eq(0)
        raddr = self.wire("raddr", 4, label=ctrl)
        raddr <<= cat(rslot, rptr_sel)

        head_tag = self.wire("head_tag", TAG_WIDTH, label=ctrl)
        head_tag <<= self.tagq.read(raddr)
        present = self.wire("present", 1, label=ctrl)
        present <<= nonempty & hw_flows_to(head_tag, self.rd_tag)

        self.out_valid = self.output("out_valid", 1, label=ctrl)
        self.out_valid <<= present
        self.out_tag = self.output("out_tag", TAG_WIDTH, label=ctrl, default=0)
        with when(present):
            self.out_tag <<= head_tag
        self.out_data = self.output(
            "out_data", 128,
            label=data_label(self.out_tag) if protected else None,
            default=0,
        )
        with when(present):
            self.out_data <<= self.dataq.read(raddr)

        do_pop = self.pop & present
        with when(do_pop):
            for s in range(_N):
                with when(rslot.eq(s)):
                    self.rptrs[s] <<= self.rptrs[s] + 1

        # occupancy bookkeeping (push and pop may hit different slots)
        for s in range(_N):
            inc = do_push & wslot.eq(s)
            dec = do_pop & rslot.eq(s)
            with when(inc & ~dec):
                self.counts[s] <<= self.counts[s] + 1
            with when(dec & ~inc):
                self.counts[s] <<= self.counts[s] - 1

        self.empty = self.output("empty", 1, label=ctrl)
        self.empty <<= all_zero(self.counts)


def all_zero(counts) -> Node:
    result: Node = counts[0].eq(0)
    for c in counts[1:]:
        result = result & c.eq(0)
    return result
