"""Power-analysis round-function targets: unmasked and 2-share masked.

The power observatory (:mod:`repro.obs.power`) needs a workload whose
side-channel story is *known*: a first AES round whose S-box output
register is the classic CPA target, in two variants sharing one
interface:

* ``RoundPowerUnit(masked=False)`` — AddRoundKey, SubBytes, and a second
  ShiftRows+MixColumns stage, all on plain values.  Every register and
  wire carries a deterministic function of (plaintext, key), so a
  Hamming-distance power proxy leaks ``HW(sbox(p ^ k))`` per byte and a
  correlation attack recovers the key.

* ``RoundPowerUnit(masked=True)`` — the same round as a first-order
  Boolean-masked datapath with **table recomputation** (Herbst et al.
  style): the host supplies the state pre-masked with an input mask byte
  ``m_in`` (replicated across the 16 bytes) and provisions the writable
  ``msbox`` memory with ``S'(v) = S(v ^ m_in) ^ m_out`` before each
  trace, so the hardware only ever computes on the two shares

  ``share0 = sbox(p ^ k) ^ M_out``   and   ``mask = M_out``

  (``M_out`` = ``m_out`` replicated).  ShiftRows/MixColumns are linear,
  so the second stage transforms each share independently and the
  unmasked round output ``share0 ^ mask`` exists nowhere in the netlist
  — recombination happens in the host, after the power trace ends.

The module deliberately has no tags or IFC labels: it is a *physical*
side-channel scenario, orthogonal to the paper's information-flow
enforcement (the observatory's paired gate checks both axes — see
``docs/observability.md``).

Host-side helpers (:func:`masked_sbox_table`, :func:`mask128`,
:func:`recombine`) keep the testbench protocol next to the hardware it
drives.
"""

from __future__ import annotations

from typing import List

from ..aes.constants import SBOX
from ..hdl.module import Module, when
from ..hdl.nodes import Node, cat
from .round_exprs import mix_columns_expr, sbox_lookup_expr, shift_rows_expr

#: Cycles from ``in_valid`` to the second-stage register (the trace
#: window the power campaigns capture).
ROUND_LATENCY = 2


def mask128(mask_byte: int) -> int:
    """The 8-bit mask replicated over all 16 state bytes."""
    out = 0
    for _ in range(16):
        out = (out << 8) | (mask_byte & 0xFF)
    return out


def masked_sbox_table(m_in: int, m_out: int) -> List[int]:
    """Recomputed table ``S'(v) = S(v ^ m_in) ^ m_out``."""
    return [SBOX[v ^ (m_in & 0xFF)] ^ (m_out & 0xFF) for v in range(256)]


def recombine(share0: int, mask: int) -> int:
    """Host-side unmasking of the round output (never done in hardware)."""
    return share0 ^ mask


def reference_round(plain: int, key: int) -> int:
    """Software model of the unit's output: MC(SR(S(p ^ k)))."""
    from ..aes import block_to_state, mix_columns, shift_rows, \
        state_to_block, sub_bytes

    state = block_to_state(plain ^ key)
    return state_to_block(mix_columns(shift_rows(sub_bytes(state))))


class RoundPowerUnit(Module):
    """One AES round as a power side-channel target (see module docs)."""

    def __init__(self, masked: bool = False, name: str = "roundpow"):
        super().__init__(name)
        self.masked = masked

        self.in_valid = self.input("in_valid", 1)
        #: plaintext (unmasked) or ``p ^ mask128(m_in)`` (masked)
        self.in_state = self.input("in_state", 128)
        self.in_key = self.input("in_key", 128)
        if masked:
            #: the output mask byte the provisioned table XORs in
            self.in_mask_out = self.input("in_mask_out", 8)
            #: testbench-provisioned masked S-box (poke_mem per trace)
            self.msbox = self.mem("msbox", 256, 8)
            sbox_mem = self.msbox
        else:
            self.sbox = self.rom("sbox", SBOX, 8)
            sbox_mem = self.sbox

        ark = self.in_state ^ self.in_key
        sub = sbox_lookup_expr(ark, sbox_mem)

        # stage 1: the CPA target register (share0 of sbox output)
        self.valid_r = self.reg("valid_r", 1)
        self.state_r = self.reg("state_r", 128)
        self.valid_r <<= self.in_valid
        with when(self.in_valid):
            self.state_r <<= sub
        if masked:
            self.mask_r = self.reg("mask_r", 128)
            with when(self.in_valid):
                self.mask_r <<= self._replicate(self.in_mask_out)

        # stage 2: the linear layer (applies to each share independently)
        self.valid2_r = self.reg("valid2_r", 1)
        self.state2_r = self.reg("state2_r", 128)
        self.valid2_r <<= self.valid_r
        with when(self.valid_r):
            self.state2_r <<= mix_columns_expr(shift_rows_expr(self.state_r))
        if masked:
            self.mask2_r = self.reg("mask2_r", 128)
            with when(self.valid_r):
                self.mask2_r <<= mix_columns_expr(
                    shift_rows_expr(self.mask_r))

        self.out_valid = self.output("out_valid", 1)
        self.out_valid <<= self.valid2_r
        self.out_share0 = self.output("out_share0", 128)
        self.out_share0 <<= self.state2_r
        if masked:
            self.out_mask = self.output("out_mask", 128)
            self.out_mask <<= self.mask2_r

    @staticmethod
    def _replicate(byte: Node) -> Node:
        return cat(*([byte] * 16))
