"""Security-tag operations as hardware expressions.

The protected accelerator manipulates 8-bit tags (conf nibble above the
integrity/vouch nibble — :mod:`repro.accel.common`) in real logic.  With
the principal-set lattice every lattice operation is a bitwise subset
computation, which is exactly why the paper's runtime enforcement is
cheap (Table 2):

* conf flow ``a ⊑C b``      → ``(a & ~b) == 0``
* integ flow ``a ⊑I b``     → ``(b & ~a) == 0``  (vouch(a) ⊇ vouch(b))
* conf join                 → ``a | b``; conf meet → ``a & b``
* integ join                → ``a & b``  (fewer vouchers)
* nonmalleable declassify ``C(data) ⊑C ⊥ ⊔C r(I(user))``
                            → ``(conf(data) & ~vouch(user)) == 0``
"""

from __future__ import annotations

from ..hdl.nodes import Node, cat
from .common import LATTICE

_N = len(LATTICE.principals)


def conf_bits(tag: Node) -> Node:
    """Confidentiality nibble of an encoded tag expression."""
    return tag[2 * _N - 1:_N]


def integ_bits(tag: Node) -> Node:
    """Integrity (vouch) nibble of an encoded tag expression."""
    return tag[_N - 1:0]


def make_tag_expr(conf: Node, integ: Node) -> Node:
    return cat(conf, integ)


def hw_conf_leq(a_conf: Node, b_conf: Node) -> Node:
    """``a ⊑C b`` as a 1-bit expression."""
    return (a_conf & ~b_conf).is_zero()


def hw_integ_leq(a_integ: Node, b_integ: Node) -> Node:
    """``a ⊑I b`` (a at least as trusted as b) as a 1-bit expression."""
    return (b_integ & ~a_integ).is_zero()


def hw_flows_to(tag_a: Node, tag_b: Node) -> Node:
    """Full label flow check between two encoded tags."""
    return hw_conf_leq(conf_bits(tag_a), conf_bits(tag_b)) & hw_integ_leq(
        integ_bits(tag_a), integ_bits(tag_b)
    )


def hw_join(tag_a: Node, tag_b: Node) -> Node:
    """Join of two encoded tags (conf union, vouch intersection)."""
    return make_tag_expr(
        conf_bits(tag_a) | conf_bits(tag_b),
        integ_bits(tag_a) & integ_bits(tag_b),
    )


def hw_conf_meet(a_conf: Node, b_conf: Node) -> Node:
    """Meet of two confidentiality nibbles (Fig. 8's ⊓ over the pipeline)."""
    return a_conf & b_conf


def hw_declassify_ok(data_tag: Node, user_tag: Node) -> Node:
    """Nonmalleable declassification guard for releasing to public:

    ``C(data) ⊑C ⊥ ⊔C r(I(user))`` — with the principal lattice, the
    reflection of the user's vouch set *is* a confidentiality element, so
    the check is one subset test (§3.2.2's master-key argument in gates).
    """
    return hw_conf_leq(conf_bits(data_tag), integ_bits(user_tag))


def hw_is_supervisor(user_tag: Node) -> Node:
    """Fully-trusted check: the supervisor's vouch set is all-ones."""
    full = (1 << _N) - 1
    return integ_bits(user_tag).eq(full)
