"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [out.md]``
    Run every paper experiment and write the EXPERIMENTS report.
``table1`` / ``table2``
    Regenerate just that table on stdout.
``check <module> [--json]``
    Statically check one design (see ``--list`` for names) and print the
    label report — the Fig. 6 designer experience from a shell.
``verilog <module> [-o file.v]``
    Export a design as synthesizable Verilog.
``attack <name>``
    Run one §2.1/§3.1 attack against both designs and print the outcome.
``faults [--smoke] [--backend B|all]``
    Seeded fault-injection campaign: single faults in the enforcement
    logic must be fail-safe on the protected design (block, not leak)
    while demonstrably corrupting the baseline (see docs/robustness.md).
``obs [--demo] [--out DIR]``
    Run a telemetry-enabled multi-tenant workload and report the
    metrics / trace / security-event streams (see docs/observability.md).
``obs leakage [--scenario stall|soc] [--out DIR]``
    Statistical timing-channel detector: paired baseline/protected
    campaigns, Welch's t-test + mutual information per observable.
``obs profile [--backend B] [--out DIR]``
    Per-module simulation profiler: flamegraph, Chrome trace, toggle
    heatmap.
``obs history [--history FILE] [--no-append]``
    Append BENCH_*.json gauges to the bench-history ledger and diff
    against the previous run.
``obs flows [--out DIR]``
    Flow provenance explorer: seeded scenarios on both designs with
    static + dynamic witness chains that must blame the same sources.
``obs power [--backend B] [--out DIR]``
    Power side-channel observatory: per-cycle power-proxy traces with
    TVLA + CPA detectors; the paired gate requires the unmasked round
    flagged and key-recovered while the masked variant resists
    (see docs/observability.md).
``obs fleet [--smoke] [--workers process|inline] [--out DIR]``
    Fleet observatory: cross-process span stitching into one Chrome
    trace, worker telemetry harvested over the shard pipes, and SLO
    burn-rate alerts correlated against the seeded chaos schedule —
    100% span-chain completeness and alert precision/recall of 1.0
    required (see docs/observability.md).
``ifc synth [--backend B|all] [--smoke] [--out DIR]``
    Shadow-tag transform report: tag-net counts per design, per-backend
    tagged-vs-plain overhead, and a differential spot-check against the
    interpreted ``LabelTracker`` (see docs/hdl_guide.md).
``fleet [--smoke] [--workers process|inline] [--out DIR]``
    Multi-shard fleet under seeded chaos: open-loop tenant traffic over
    a pool of worker-process shards while the harness kills workers and
    wedges pipelines; the gate requires zero lost requests, per-class
    SLOs, and unchanged security verdicts (see docs/robustness.md).

Every subcommand exits 0 on success, 1 when its gate fails (check
errors, leaky channel, fault escape, witness mismatch), and 2 on a
usage error (unknown command, design, or attack).
"""

from __future__ import annotations

import argparse
import sys


def _designs():
    from .accel.baseline import AesAcceleratorBaseline
    from .accel.debug import DebugPeripheral
    from .accel.declassifier import Declassifier
    from .accel.key_expand_unit import KeyExpandUnit
    from .accel.mini import MiniTaggedPipeline
    from .accel.output_buffer import OutputBuffer
    from .accel.pipeline import AesPipeline
    from .accel.protected import AesAcceleratorProtected
    from .accel.scratchpad import KeyScratchpad
    from .accel.stall import StallController
    from .accel.axi import AxiLiteFrontend
    from .accel.wide import AesEngineWide
    from .soc.cache_tags import CacheTags
    from .soc.secure_cache import SecureCache

    return {
        "protected": (lambda: AesAcceleratorProtected(), "shallow"),
        "baseline": (lambda: AesAcceleratorBaseline(), "flat"),
        "pipeline": (lambda: AesPipeline(protected=True), "shallow"),
        "scratchpad": (lambda: KeyScratchpad(protected=True), "flat"),
        "keyexp": (lambda: KeyExpandUnit(protected=True), "flat"),
        "keyexp-flawed": (
            lambda: KeyExpandUnit(protected=True, timing_flaw=True), "flat"),
        "outbuf": (lambda: OutputBuffer(protected=True), "flat"),
        "stall": (lambda: StallController(30, protected=True), "flat"),
        "declassifier": (lambda: Declassifier(protected=True), "flat"),
        "debug": (lambda: DebugPeripheral(protected=True), "flat"),
        "mini-guarded": (lambda: MiniTaggedPipeline(2, guarded=True), "flat"),
        "mini-unguarded": (
            lambda: MiniTaggedPipeline(2, guarded=False), "flat"),
        "wide256": (lambda: AesEngineWide(256, protected=True), "shallow"),
        "axi": (lambda: AxiLiteFrontend(), "shallow"),
        "cache-tags": (lambda: CacheTags(), "flat"),
        "cache-tags-broken": (lambda: CacheTags(broken=True), "flat"),
        "secure-cache": (lambda: SecureCache(), "flat"),
        "secure-cache-broken": (lambda: SecureCache(broken=True), "flat"),
    }


def cmd_experiments(args) -> int:
    from .eval.runner import run_all

    text = run_all(out=args.output)
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_table1(args) -> int:
    from .eval.table1 import render_table1, run_table1

    print("PROTECTED:")
    print(render_table1(run_table1(True)))
    print()
    print("BASELINE:")
    print(render_table1(run_table1(False)))
    return 0


def cmd_table2(args) -> int:
    from .eval.table2 import render_report

    print(render_report())
    return 0


def cmd_check(args) -> int:
    designs = _designs()
    if args.list or args.module is None:
        for name in sorted(designs):
            print(name)
        return 0
    if args.module not in designs:
        print(f"unknown design {args.module!r}; try --list", file=sys.stderr)
        return 2

    from .accel.common import LATTICE
    from .hdl.elaborate import elaborate, elaborate_shallow
    from .ifc.checker import IfcChecker
    from .ifc.lattice import two_point
    from .soc.cache_tags import CacheTags
    from .soc.secure_cache import SecureCache

    build, mode = designs[args.module]
    module = build()
    lattice = (two_point() if isinstance(module, (CacheTags, SecureCache))
               else LATTICE)
    netlist = (elaborate_shallow(module) if mode == "shallow"
               else elaborate(module))
    report = IfcChecker(netlist, lattice, max_hypotheses=1 << 20).check()
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok() else 1


def cmd_verilog(args) -> int:
    designs = _designs()
    if args.module not in designs:
        print(f"unknown design {args.module!r}; try 'check --list'",
              file=sys.stderr)
        return 2
    from .hdl.verilog import to_verilog

    build, _mode = designs[args.module]
    source = to_verilog(build(), args.module.replace("-", "_"))
    if args.output:
        with open(args.output, "w") as f:
            f.write(source)
        print(f"wrote {args.output} ({source.count(chr(10))} lines)")
    else:
        print(source)
    return 0


def cmd_attack(args) -> int:
    from .attacks import (
        run_covert_channel,
        run_debug_leak,
        run_key_misuse,
        run_overflow_attack,
    )

    runners = {
        "overflow": run_overflow_attack,
        "debug-leak": run_debug_leak,
        "master-key": run_key_misuse,
    }
    if args.name == "covert-channel":
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        for prot in (False, True):
            res = run_covert_channel(prot, bits, stall_cycles=16)
            print(f"{'protected' if prot else 'baseline '}: {res!r}")
        return 0
    if args.name not in runners:
        print(f"attacks: {', '.join(sorted(runners))}, covert-channel",
              file=sys.stderr)
        return 2
    for prot in (False, True):
        res = runners[args.name](prot)
        print(f"{'protected' if prot else 'baseline '}: {res!r}")
    return 0


def cmd_obs(args) -> int:
    from .obs.report import cmd_obs as run

    return run(args)


def cmd_faults(args) -> int:
    from .faults.campaign import cmd_faults as run

    return run(args)


def cmd_obs_leakage(args) -> int:
    from .obs.leakage import cmd_obs_leakage as run

    return run(args)


def cmd_obs_profile(args) -> int:
    from .obs.profile import cmd_obs_profile as run

    return run(args)


def cmd_obs_history(args) -> int:
    from .obs.history import cmd_obs_history as run

    return run(args)


def cmd_obs_flows(args) -> int:
    from .obs.flows import cmd_obs_flows as run

    return run(args)


def cmd_obs_power(args) -> int:
    from .obs.power import cmd_obs_power as run

    return run(args)


def cmd_obs_coverage(args) -> int:
    from .obs.coverage import cmd_obs_coverage as run

    return run(args)


def cmd_obs_fleet(args) -> int:
    from .obs.fleet import cmd_obs_fleet as run

    return run(args)


def cmd_ifc_synth(args) -> int:
    from .ifc.synth_cli import cmd_ifc_synth as run

    return run(args)


def cmd_fleet(args) -> int:
    from .soc.fleet import cmd_fleet as run

    return run(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC'19 secure AES accelerator reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("experiments", help="run all paper experiments")
    p.add_argument("output", nargs="?", default=None)
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("table1", help="Table 1 policy enforcement")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table2", help="Table 2 area/performance")
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("check", help="statically check a design")
    p.add_argument("module", nargs="?")
    p.add_argument("--list", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("verilog", help="export a design as Verilog")
    p.add_argument("module")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(fn=cmd_verilog)

    p = sub.add_parser("attack", help="run an attack against both designs")
    p.add_argument("name")
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser(
        "faults", help="fault-injection campaign with fail-safe gate")
    p.add_argument("--smoke", action="store_true",
                   help="reduced scenario set (CI gate)")
    p.add_argument("--seed", type=int, default=2026,
                   help="campaign RNG seed (default 2026)")
    p.add_argument("--backend", default="all",
                   choices=("interp", "compiled", "batched", "all"),
                   help="one backend, or 'all' to cross-check verdicts "
                        "across interp/compiled/batched (default all)")
    p.add_argument("--shadow-tags", action="store_true", dest="shadow_tags",
                   help="also fault the synthesized shadow tag nets on a "
                        "tag-tracking protected driver")
    p.add_argument("--out", default=None,
                   help="directory for fault_report.json")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("obs", help="telemetry report for a sample workload")
    p.add_argument("--demo", action="store_true",
                   help="tiny workload (CI smoke)")
    p.add_argument("--blocks", type=int, default=8,
                   help="blocks per tenant (default 8)")
    p.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    p.add_argument("--stutter", type=int, default=3,
                   help="reader drops out_ready every N cycles (default 3)")
    p.add_argument("--out", default=None,
                   help="directory for metrics.prom / metrics.jsonl / "
                        "trace.json / security.jsonl")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.set_defaults(fn=cmd_obs)

    obs_sub = p.add_subparsers(dest="obs_command",
                               metavar="{leakage,profile,history,flows,"
                                       "power,coverage,fleet}")

    q = obs_sub.add_parser(
        "leakage", help="statistical timing-channel detector")
    q.add_argument("--scenario", default="stall", choices=("stall", "soc"),
                   help="stall: §3.1 covert-channel probe loop; "
                        "soc: multi-tenant service latency (default stall)")
    q.add_argument("--trials", type=int, default=12,
                   help="measurement trials per design (default 12)")
    q.add_argument("--seed", type=int, default=2026,
                   help="campaign RNG seed (default 2026)")
    q.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    q.add_argument("--stall-cycles", type=int, default=16,
                   help="encoding window for the stall scenario (default 16)")
    q.add_argument("--demo", action="store_true",
                   help="6-trial campaign (CI smoke)")
    q.add_argument("--out", default=None,
                   help="directory for leakage_report.json")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_obs_leakage)

    q = obs_sub.add_parser(
        "profile", help="per-module simulation profiler")
    q.add_argument("--demo", action="store_true",
                   help="tiny workload (CI smoke)")
    q.add_argument("--blocks", type=int, default=8,
                   help="blocks per tenant (default 8)")
    q.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    q.add_argument("--baseline", action="store_true",
                   help="profile the baseline design instead of protected")
    q.add_argument("--interval", type=int, default=1,
                   help="sample every N cycles (default 1)")
    q.add_argument("--window", type=int, default=64,
                   help="heatmap bucket size in cycles (default 64)")
    q.add_argument("--out", default=None,
                   help="directory for flamegraph.folded / "
                        "profile_trace.json / toggle_heatmap.json")
    q.add_argument("--json", action="store_true",
                   help="print the toggle heatmap JSON on stdout")
    q.set_defaults(fn=cmd_obs_profile)

    q = obs_sub.add_parser(
        "history", help="bench-history ledger append + regression diff")
    q.add_argument("--root", default=".",
                   help="directory holding BENCH_*.json (default .)")
    q.add_argument("--bench", nargs="*", default=None,
                   help="explicit bench artifact paths (overrides --root)")
    q.add_argument("--history", default="BENCH_history.jsonl",
                   help="ledger path (default BENCH_history.jsonl)")
    q.add_argument("--tolerance", type=float, default=0.10,
                   help="relative change treated as noise (default 0.10)")
    q.add_argument("--note", default="",
                   help="free-form note stored with the entry")
    q.add_argument("--no-append", action="store_true",
                   help="compare only; leave the ledger untouched")
    q.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when any gauge regressed beyond tolerance")
    q.add_argument("--json", action="store_true",
                   help="machine-readable comparison on stdout")
    q.set_defaults(fn=cmd_obs_history)

    q = obs_sub.add_parser(
        "flows", help="flow provenance explorer with witness agreement gate")
    q.add_argument("--demo", action="store_true",
                   help="accepted for CI symmetry; the scenario set is "
                        "already smoke-sized")
    q.add_argument("--seed", type=int, default=2026,
                   help="recorded in the report (scenarios are "
                        "deterministic; default 2026)")
    q.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    q.add_argument("--out", default=None,
                   help="directory for flow_report.json / flow_report.md / "
                        "security.jsonl")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_obs_flows)

    q = obs_sub.add_parser(
        "power", help="power side-channel observatory (TVLA + CPA gate)")
    q.add_argument("--traces", type=int, default=512,
                   help="random traces for the CPA budget (default 512)")
    q.add_argument("--tvla-traces", type=int, default=64,
                   help="fixed/random traces per TVLA group (default 64)")
    q.add_argument("--seed", type=int, default=2026,
                   help="campaign RNG seed (default 2026)")
    q.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    q.add_argument("--lanes", type=int, default=64,
                   help="lanes per batched run — one power trace per "
                        "lane (default 64; batched backend only)")
    q.add_argument("--no-ifc-check", action="store_true",
                   dest="no_ifc_check",
                   help="skip the protected design's static IFC "
                        "cross-check")
    q.add_argument("--demo", action="store_true",
                   help="default trace budget (CI gate symmetry)")
    q.add_argument("--out", default=None,
                   help="directory for power_report.json / "
                        "power_report.md")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_obs_power)

    q = obs_sub.add_parser(
        "coverage",
        help="verification coverage observatory (toggle/taint/site/fault "
             "coverage ledger + holes gate)")
    q.add_argument("--backend", default="all",
                   choices=("interp", "compiled", "batched", "all"),
                   help="one backend, or 'all' for every available one "
                        "(default all; maps must be bit-identical)")
    q.add_argument("--seed", type=int, default=2026,
                   help="campaign RNG seed (default 2026)")
    q.add_argument("--lanes", type=int, default=2,
                   help="lanes for the batched collection — all driven "
                        "identically, OR-merged (default 2)")
    q.add_argument("--smoke", action="store_true",
                   help="structural workload only: skip the fault-armed "
                        "phase and the outcome-matrix campaign")
    q.add_argument("--no-faults", action="store_true", dest="no_faults",
                   help="skip the smoke fault campaign behind the "
                        "outcome matrix")
    q.add_argument("--ledger", default=None,
                   help="append-only coverage ledger JSONL to merge "
                        "with and append to")
    q.add_argument("--out", default=None,
                   help="directory for coverage_report.json / .md / "
                        "coverage_map.json")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_obs_coverage)

    q = obs_sub.add_parser(
        "fleet",
        help="fleet observatory (cross-process trace stitching, worker "
             "telemetry harvest, SLO burn-rate alerts vs seeded chaos)")
    q.add_argument("--seed", type=int, default=2026,
                   help="single seed for traffic, chaos, and jitter "
                        "(default 2026)")
    q.add_argument("--shards", type=int, default=4,
                   help="shard pool size (default 4)")
    q.add_argument("--tenants", type=int, default=6,
                   help="tenant population (default 6)")
    q.add_argument("--horizon", type=int, default=1536,
                   help="traffic horizon in fleet cycles (default 1536)")
    q.add_argument("--workers", default="process",
                   choices=("process", "inline"),
                   help="primary run's shard hosting (default process; "
                        "the identity twin always runs inline)")
    q.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    q.add_argument("--kills", type=int, default=2,
                   help="chaos worker kills to schedule (default 2)")
    q.add_argument("--wedges", type=int, default=1,
                   help="chaos pipeline wedges to schedule (default 1)")
    q.add_argument("--no-identity", action="store_true",
                   dest="no_identity",
                   help="skip the cross-host identity twin run")
    q.add_argument("--smoke", action="store_true",
                   help="small inline-worker fleet (CI smoke)")
    q.add_argument("--out", default=None,
                   help="directory for fleet_obs_report.json / .md / "
                        "fleet_trace.json")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_obs_fleet)

    p = sub.add_parser("ifc", help="information-flow tooling")
    ifc_sub = p.add_subparsers(dest="ifc_command", metavar="{synth}")
    q = ifc_sub.add_parser(
        "synth",
        help="shadow-tag transform report + differential spot-check gate")
    q.add_argument("--backend", default="all",
                   choices=("interp", "compiled", "batched", "all"),
                   help="one backend, or 'all' for every available one "
                        "(default all; batched skipped without numpy)")
    q.add_argument("--cycles", type=int, default=400,
                   help="workload length for the overhead measurement "
                        "(default 400)")
    q.add_argument("--smoke", action="store_true",
                   help="short workload (CI gate)")
    q.add_argument("--out", default=None,
                   help="directory for synth_report.json")
    q.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    q.set_defaults(fn=cmd_ifc_synth)

    p = sub.add_parser(
        "fleet", help="multi-shard fleet under chaos with SLO gate")
    p.add_argument("--seed", type=int, default=2026,
                   help="single seed for traffic, chaos schedule, and "
                        "retry jitter (default 2026)")
    p.add_argument("--shards", type=int, default=4,
                   help="shard pool size (default 4)")
    p.add_argument("--tenants", type=int, default=6,
                   help="tenant population (default 6)")
    p.add_argument("--horizon", type=int, default=1536,
                   help="traffic horizon in fleet cycles (default 1536)")
    p.add_argument("--workers", default="process",
                   choices=("process", "inline"),
                   help="shard hosting: forked worker processes (default) "
                        "or in-process shards")
    p.add_argument("--backend", default="compiled",
                   choices=("interp", "compiled", "batched"))
    p.add_argument("--kills", type=int, default=2,
                   help="chaos worker kills to schedule (default 2)")
    p.add_argument("--wedges", type=int, default=1,
                   help="chaos pipeline wedges to schedule (default 1)")
    p.add_argument("--smoke", action="store_true",
                   help="small inline-worker fleet (CI smoke)")
    p.add_argument("--out", default=None,
                   help="directory for fleet_report.json / fleet_report.md")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.set_defaults(fn=cmd_fleet)

    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # output truncated by a closed pipe (e.g. `| head`)
        sys.exit(0)
