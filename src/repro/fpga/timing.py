"""Critical-path depth and Fmax estimation.

Computes the longest register-to-register combinational path in LUT
levels (a standard pre-synthesis estimate) and converts to a clock
frequency with 7-series-calibrated delays.  The interesting output for
Table 2 is *relative*: the protection's tag checks sit in parallel with
the AES datapath (an 8-bit compare next to a 128-bit SubBytes→
MixColumns cone), so the critical path — and hence Fmax — is unchanged.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..hdl.netlist import Netlist
from ..hdl.nodes import Node, walk

#: per-LUT-level delay including average routing (ns), 7-series-ish
T_LEVEL_NS = 0.5
#: clock-to-out plus setup (ns)
T_REG_NS = 0.6
#: synthesis flattens xor/mux expression trees into wide LUT functions;
#: expression-tree depth overestimates post-synthesis LUT levels by
#: roughly this factor (single calibration constant, applied uniformly)
FLATTENING = 0.3


def _level_cost(node: Node) -> int:
    kind = node.kind
    if kind in ("const", "signal", "slice", "concat", "downgrade"):
        return 0
    if kind == "unary":
        if node.op == "not":
            return 0
        return max(1, (node.a.width - 1).bit_length() // 2)  # reduction tree
    if kind == "binary":
        op = node.op
        if op in ("and", "or", "xor"):
            return 1
        if op in ("add", "sub"):
            return 2  # carry chain counts ~2 levels at these widths
        if op in ("eq", "ne", "lt", "le", "gt", "ge"):
            return 2
        if op in ("shl", "shr"):
            return 0 if node.b.kind == "const" else 3
        if op == "mul":
            return 6
        raise AssertionError(op)
    if kind == "mux":
        return 1
    if kind == "memread":
        # ROM-as-logic lookup: ~3 levels for a 256-deep table; BRAM access
        # is registered in real designs but our stages read combinationally,
        # so charge it as logic depth
        return max(2, (node.mem.depth - 1).bit_length() - 5)
    raise AssertionError(kind)


def critical_path_levels(netlist: Netlist) -> int:
    """Longest input/register → register/output path, in LUT levels."""
    depth: Dict[int, int] = {}
    best = 0
    for node in walk(netlist.all_roots()):
        if node.kind in ("const", "signal"):
            depth[id(node)] = 0
            continue
        operand_depth = max(
            (depth[id(op)] for op in node.operands()), default=0
        )
        d = operand_depth + _level_cost(node)
        depth[id(node)] = d
        if d > best:
            best = d
    return best


def critical_path_endpoint(netlist: Netlist) -> Tuple[int, str]:
    """(levels, endpoint name) of the deepest register/output cone —
    the 'which path limits Fmax' view a timing report gives."""
    depth: Dict[int, int] = {}
    for node in walk(netlist.all_roots()):
        if node.kind in ("const", "signal"):
            depth[id(node)] = 0
            continue
        operand_depth = max(
            (depth[id(op)] for op in node.operands()), default=0
        )
        depth[id(node)] = operand_depth + _level_cost(node)

    best, name = 0, "<none>"
    for sig, driver in netlist.drivers.items():
        if depth.get(id(driver), 0) > best:
            best, name = depth[id(driver)], sig.path
    for reg, nxt in netlist.reg_next.items():
        if depth.get(id(nxt), 0) > best:
            best, name = depth[id(nxt)], f"{reg.path} (reg)"
    return best, name


def fmax_mhz(netlist: Netlist) -> float:
    levels = critical_path_levels(netlist)
    period_ns = T_REG_NS + T_LEVEL_NS * FLATTENING * levels
    return 1000.0 / period_ns


def timing_summary(netlist: Netlist) -> Dict[str, float]:
    levels = critical_path_levels(netlist)
    return {
        "levels": levels,
        "period_ns": T_REG_NS + T_LEVEL_NS * FLATTENING * levels,
        "fmax_mhz": fmax_mhz(netlist),
    }
