"""Table-2-style reporting: baseline vs protected resources and Fmax."""

from __future__ import annotations

from typing import Dict

from ..hdl.elaborate import elaborate
from ..hdl.module import Module
from ..hdl.netlist import Netlist
from .resources import estimate_resources, overhead_percent
from .timing import fmax_mhz

#: The paper's Table 2, for side-by-side reporting.
PAPER_TABLE2 = {
    "LUTs": (13275, 14021, 5.6),
    "FFs": (14645, 15605, 6.6),
    "BRAMs": (40, 44, 10.0),
    "Frequency (MHz)": (400, 400, 0.0),
}


class Table2Row:
    def __init__(self, name: str, baseline: float, protected: float):
        self.name = name
        self.baseline = baseline
        self.protected = protected

    @property
    def overhead(self) -> float:
        return overhead_percent(self.baseline, self.protected)

    def __repr__(self) -> str:
        return (f"{self.name}: {self.baseline:.0f} -> {self.protected:.0f} "
                f"({self.overhead:+.1f}%)")


def table2(baseline: Netlist, protected: Netlist) -> Dict[str, Table2Row]:
    """Compute the four Table 2 rows for a pair of elaborated designs."""
    eb = estimate_resources(baseline)
    ep = estimate_resources(protected)
    return {
        "LUTs": Table2Row("LUTs", eb.total_luts, ep.total_luts),
        "FFs": Table2Row("FFs", eb.ffs, ep.ffs),
        "BRAMs": Table2Row("BRAMs", eb.brams, ep.brams),
        "Frequency (MHz)": Table2Row(
            "Frequency (MHz)", fmax_mhz(baseline), fmax_mhz(protected)
        ),
    }


def table2_for_modules(baseline: Module, protected: Module) -> Dict[str, Table2Row]:
    return table2(elaborate(baseline), elaborate(protected))


def render_table2(rows: Dict[str, Table2Row],
                  include_paper: bool = True) -> str:
    """Render the measured table next to the paper's numbers."""
    lines = []
    header = f"{'':22s}{'Baseline':>12s}{'Protected':>14s}{'Overhead':>10s}"
    if include_paper:
        header += f"{'Paper Δ':>10s}"
    lines.append(header)
    for name, row in rows.items():
        line = (f"{name:22s}{row.baseline:12.0f}{row.protected:14.0f}"
                f"{row.overhead:+9.1f}%")
        if include_paper and name in PAPER_TABLE2:
            line += f"{PAPER_TABLE2[name][2]:+9.1f}%"
        lines.append(line)
    return "\n".join(lines)
