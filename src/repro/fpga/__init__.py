"""repro.fpga — Virtex-7-calibrated area/timing estimation (Table 2)."""

from .report import PAPER_TABLE2, Table2Row, render_table2, table2, table2_for_modules
from .resources import ResourceEstimate, estimate_resources, overhead_percent
from .timing import (critical_path_endpoint, critical_path_levels,
                     fmax_mhz, timing_summary)

__all__ = [
    "PAPER_TABLE2",
    "ResourceEstimate",
    "Table2Row",
    "critical_path_endpoint",
    "critical_path_levels",
    "estimate_resources",
    "fmax_mhz",
    "overhead_percent",
    "render_table2",
    "table2",
    "table2_for_modules",
    "timing_summary",
]
