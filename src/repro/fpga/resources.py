"""FPGA resource estimation — LUTs, FFs, BRAMs over an elaborated netlist.

A deliberately simple, *uniformly applied* cost model calibrated to
Xilinx 7-series (Virtex-7) characteristics, the paper's target:

* **FFs** — one per register bit.
* **LUTs** — word-level operators decompose into 2-input gate
  equivalents; 6-input LUTs absorb ~2.5 gate equivalents each (typical
  packing).  Adders map to one LUT per bit (carry chains), wide muxes to
  half a LUT per bit, comparisons to a compressor tree.
* **ROMs** — read-only memories synthesize to LUT logic (the way
  high-frequency AES S-boxes are actually built): about
  ``width × ceil(depth/64)`` LUTs plus a small select tree per read
  port.  This matches the known ~32–40 LUTs for a logic S-box.
* **RAMs** — writable memories of ≥1 Kb map to 18 Kb block RAMs
  (512 × 36 geometry), replicated for read ports beyond the two a BRAM
  provides; smaller writable arrays become distributed LUTRAM.

Absolute numbers are indicative; the experiment (Table 2) reports the
*relative* protected/baseline overheads, which is what the paper's
evaluation claims are about.  The same model is applied to both designs
with no per-design tuning.
"""

from __future__ import annotations

import math
from typing import Dict

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import Node

#: gate-equivalents absorbed per 6-input LUT
PACKING = 2.5
#: writable arrays at least this large go to block RAM
BRAM_THRESHOLD_BITS = 2048
#: 18 Kb BRAM geometry (36-bit word incl. parity; 32 usable for data)
BRAM_DEPTH, BRAM_WIDTH = 512, 32
#: read/write ports per BRAM
BRAM_PORTS = 2


class ResourceEstimate:
    """Aggregate resource usage of one design."""

    def __init__(self):
        self.luts = 0.0
        self.ffs = 0
        self.brams = 0
        self.lutram_luts = 0.0
        self.rom_luts = 0.0
        self.logic_luts = 0.0
        self.by_category: Dict[str, float] = {}

    @property
    def total_luts(self) -> int:
        return int(round(self.luts))

    def as_dict(self) -> Dict[str, int]:
        return {
            "LUTs": self.total_luts,
            "FFs": self.ffs,
            "BRAMs": self.brams,
        }

    def __repr__(self) -> str:
        return (f"ResourceEstimate(LUTs={self.total_luts}, FFs={self.ffs}, "
                f"BRAMs={self.brams})")


def _gate_equivalents(node: Node) -> float:
    """2-input gate equivalents of one expression node."""
    kind = node.kind
    w = node.width
    if kind in ("const", "signal", "slice", "concat", "downgrade", "memread"):
        return 0.0
    if kind == "unary":
        if node.op == "not":
            return 0.0  # folds into downstream LUTs
        return node.a.width - 1  # reduction tree
    if kind == "binary":
        op = node.op
        if op in ("and", "or", "xor"):
            return float(w)
        if op in ("add", "sub"):
            return 2.5 * w  # carry chain, ~1 LUT/bit at PACKING 2.5
        if op == "mul":
            return 6.0 * w * w / 8
        if op in ("eq", "ne"):
            return max(node.a.width, node.b.width) * 1.3
        if op in ("lt", "le", "gt", "ge"):
            return max(node.a.width, node.b.width) * 2.0
        if op in ("shl", "shr"):
            if node.b.kind == "const":
                return 0.0  # static shift is wiring
            return w * math.ceil(max(1, node.b.width)) * 1.5  # barrel
        raise AssertionError(op)
    if kind == "mux":
        return 1.25 * w  # 2:1 mux, 2 bits per LUT at PACKING
    raise AssertionError(kind)


def _rom_luts(mem: Mem, read_ports: int) -> float:
    """LUT cost of a ROM implemented as logic, per read port."""
    addr_bits = max(1, (mem.depth - 1).bit_length())
    per_bit = math.ceil(mem.depth / 64)
    select_tree = max(0, per_bit - 1) / 3.0
    per_port = mem.width * (per_bit + select_tree)
    return per_port * read_ports


def _ram_cost(mem: Mem, read_ports: int, est: ResourceEstimate,
              extra_width: int = 0) -> None:
    width = mem.width + extra_width
    bits = mem.depth * width
    if bits >= BRAM_THRESHOLD_BITS and mem.meta.get("style") != "distributed":
        base = math.ceil(width / BRAM_WIDTH) * math.ceil(mem.depth / BRAM_DEPTH)
        replicas = max(1, math.ceil((read_ports + 1) / BRAM_PORTS))
        est.brams += base * replicas
    else:
        # distributed RAM: 64 bits per LUT, one copy per read port
        lutram = bits / 64.0 * max(1, read_ports)
        est.lutram_luts += lutram
        est.luts += lutram


def estimate_resources(netlist: Netlist) -> ResourceEstimate:
    """Estimate LUT/FF/BRAM usage for an elaborated netlist."""
    est = ResourceEstimate()

    est.ffs = sum(r.width for r in netlist.regs)

    # logic: every distinct node counts once (the netlist shares subtrees)
    gates = 0.0
    read_ports: Dict[int, int] = {}
    mem_by_id: Dict[int, Mem] = {id(m): m for m in netlist.mems}
    for node in netlist.all_nodes():
        gates += _gate_equivalents(node)
        if node.kind == "memread":
            read_ports[id(node.mem)] = read_ports.get(id(node.mem), 0) + 1
    est.logic_luts = gates / PACKING
    est.luts += est.logic_luts

    # width riders: a sidecar array (e.g. security tags) stored with its
    # base memory widens the base memory's words instead of costing its own
    extra_width: Dict[int, int] = {}
    riders = set()
    for mem in netlist.mems:
        base = mem.meta.get("width_rider_of")
        if base is not None:
            extra_width[id(base)] = extra_width.get(id(base), 0) + mem.width
            riders.add(id(mem))

    for mem in netlist.mems:
        if id(mem) in riders:
            continue
        ports = read_ports.get(id(mem), 0)
        if mem.is_rom() and not netlist.mem_writes.get(mem):
            rom = _rom_luts(mem, ports)
            est.rom_luts += rom
            est.luts += rom
        else:
            _ram_cost(mem, ports, est, extra_width.get(id(mem), 0))

    est.by_category = {
        "logic": est.logic_luts,
        "rom": est.rom_luts,
        "lutram": est.lutram_luts,
    }
    return est


def overhead_percent(baseline: float, protected: float) -> float:
    if baseline == 0:
        return 0.0
    return 100.0 * (protected - baseline) / baseline
