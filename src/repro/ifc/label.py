"""Security labels ``ℓ = (c, i)`` and their algebra.

A :class:`Label` pairs a confidentiality element with an integrity
element from one :class:`~repro.ifc.lattice.SecurityLattice`.  The flow
relation is pointwise: ``ℓ flows_to ℓ′`` iff ``C(ℓ) ⊑C C(ℓ′)`` and
``I(ℓ) ⊑I I(ℓ′)`` — a signal may only influence signals at least as
confidential and at most as trusted.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from .lattice import SecurityLattice


class Label:
    """An immutable (confidentiality, integrity) pair."""

    __slots__ = ("lattice", "conf", "integ")

    def __init__(self, lattice: SecurityLattice, conf, integ):
        self.lattice = lattice
        self.conf: FrozenSet[str] = lattice.conf(conf)
        self.integ: FrozenSet[str] = lattice.integ(integ)

    # -- flow relation -------------------------------------------------------
    def _require_same_lattice(self, other: "Label") -> None:
        if self.lattice != other.lattice:
            raise ValueError("labels from different lattices are incomparable")

    def conf_flows_to(self, other: "Label") -> bool:
        """``self ⊑C other``."""
        self._require_same_lattice(other)
        return self.lattice.conf_leq(self.conf, other.conf)

    def integ_flows_to(self, other: "Label") -> bool:
        """``self ⊑I other`` (self at least as trusted as other)."""
        self._require_same_lattice(other)
        return self.lattice.integ_leq(self.integ, other.integ)

    def flows_to(self, other: "Label") -> bool:
        return self.conf_flows_to(other) and self.integ_flows_to(other)

    # -- algebra ---------------------------------------------------------------
    def join(self, other: "Label") -> "Label":
        """Least upper bound in the flow order (⊔C on conf, ⊔I on integ)."""
        self._require_same_lattice(other)
        lat = self.lattice
        return Label(
            lat,
            lat.conf_join(self.conf, other.conf),
            lat.integ_join(self.integ, other.integ),
        )

    def meet(self, other: "Label") -> "Label":
        self._require_same_lattice(other)
        lat = self.lattice
        return Label(
            lat,
            lat.conf_meet(self.conf, other.conf),
            lat.integ_meet(self.integ, other.integ),
        )

    # -- reflection -----------------------------------------------------------
    def reflect_integ_to_conf(self):
        """``r(I(ℓ))`` as a confidentiality element."""
        return self.lattice.reflect_ic(self.integ)

    def reflect_conf_to_integ(self):
        """``r(C(ℓ))`` as an integrity element."""
        return self.lattice.reflect_ci(self.conf)

    # -- substitution helpers ---------------------------------------------------
    def with_conf(self, conf) -> "Label":
        return Label(self.lattice, conf, self.integ)

    def with_integ(self, integ) -> "Label":
        return Label(self.lattice, self.conf, integ)

    # -- tag encoding -------------------------------------------------------------
    def encode(self) -> int:
        """Encode as a hardware tag: conf bits above integ bits."""
        n = len(self.lattice.principals)
        return (self.lattice.encode_conf(self.conf) << n) | self.lattice.encode_integ(
            self.integ
        )

    @classmethod
    def decode(cls, lattice: SecurityLattice, tag: int) -> "Label":
        n = len(lattice.principals)
        mask = (1 << n) - 1
        return cls(
            lattice,
            lattice.decode_conf((tag >> n) & mask),
            lattice.decode_integ(tag & mask),
        )

    # -- identity ---------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Label)
            and self.lattice == other.lattice
            and self.conf == other.conf
            and self.integ == other.integ
        )

    def __hash__(self) -> int:
        return hash((self.lattice, self.conf, self.integ))

    def __repr__(self) -> str:
        lat = self.lattice
        return f"({lat.conf_names(self.conf)}, {lat.integ_names(self.integ)})"


def bottom(lattice: SecurityLattice) -> Label:
    """(public, trusted) — the label of constants and unclassified wiring."""
    return Label(lattice, lattice.conf_bottom, lattice.integ_bottom)


def top(lattice: SecurityLattice) -> Label:
    """(secret, untrusted) — the most restrictive label."""
    return Label(lattice, lattice.conf_top, lattice.integ_top)


def public_trusted(lattice: SecurityLattice) -> Label:
    return bottom(lattice)


def secret_trusted(lattice: SecurityLattice) -> Label:
    """(⊤, ⊤) in the paper's notation — e.g. the master key."""
    return Label(lattice, lattice.conf_top, lattice.integ_bottom)


def public_untrusted(lattice: SecurityLattice) -> Label:
    return Label(lattice, lattice.conf_bottom, lattice.integ_top)


def join_all(labels: Iterable[Label], lattice: SecurityLattice) -> Label:
    result = bottom(lattice)
    for lbl in labels:
        result = result.join(lbl)
    return result


def meet_all(labels: Iterable[Label], lattice: SecurityLattice) -> Label:
    result = top(lattice)
    for lbl in labels:
        result = result.meet(lbl)
    return result
