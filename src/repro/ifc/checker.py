"""Static information-flow checker over elaborated netlists.

This module plays the role ChiselFlow's type checker plays in the paper:
given a netlist whose signals and memories carry security labels
(:class:`~repro.ifc.label.Label`, :class:`~repro.ifc.dependent.DependentLabel`,
or :class:`~repro.ifc.dependent.CellTagLabel`), it verifies that **every
flow** — explicit dataflow, implicit flow through conditions, and the
timing of register updates — respects the lattice, and that every
downgrade marker satisfies the nonmalleable conditions of Eq. (1).

How it works
------------
1.  *Inference.*  Unlabelled intermediate signals get labels by a join
    fixpoint over the netlist (dependent labels contribute their
    domain-wide upper bound, which is sound).

2.  *Obligations.*  Every declared-label signal and every memory write is
    an obligation: the label of the folded driver expression (which
    includes the ``when`` conditions — that is where implicit flows and
    timing channels surface, exactly as for the ``valid`` signal in
    Fig. 6) must flow to the declared label.

3.  *Hypothesis enumeration.*  Dependent labels are checked per selector
    value, SecVerilog-style: the checker collects the dependent selectors
    (and any designer-marked ``enumerate`` control signals) in the cone
    of the obligation, enumerates their joint values, *partially
    evaluates* the expression under each hypothesis — pruning mux
    branches and folding guards — and checks the flow in each case.
    A tag-guarded write whose guard folds to 0 under a hypothesis is
    vacuously safe in that case: this is how the checker proves the
    runtime tag checks of Figs. 5, 7, and 8 sufficient.

4.  *Register sinks with dependent labels* compare against the label at
    the selector's **next** value (data and tag move through a pipeline
    stage together, so the invariant is "next data ⊑ label(next tag)").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import Node, walk
from ..hdl.signal import Signal
from .dependent import CellTagLabel, DependentLabel
from .errors import CheckReport, LabelError
from .label import Label, bottom, join_all, meet_all
from .lattice import SecurityLattice
from .nonmalleable import check_downgrade, downgraded_label
from .witness import Witness, WitnessSource, WitnessStep

# Hypothesis tokens: ("sig", id) for signals, ("cell", memid, addrkey) for
# tag-memory cells addressed through a shared address expression.
HypToken = Tuple
Hypothesis = Dict[HypToken, int]

MAX_ENUM_WIDTH = 10  # widest signal the checker will exhaustively enumerate


def _sig_token(sig: Signal) -> HypToken:
    return ("sig", id(sig))


def _addr_key(addr: Node):
    """Structural key for address-expression correlation."""
    if addr.kind == "signal":
        return ("sig", id(addr))
    if addr.kind == "const":
        return ("const", addr.value, addr.width)
    return ("node", id(addr))


def _cell_token(mem: Mem, addr: Node) -> HypToken:
    return ("cell", id(mem), _addr_key(addr))


class _HypVar:
    """One enumerable unknown: a signal value or a tag-memory cell value."""

    __slots__ = ("token", "name", "domain")

    def __init__(self, token: HypToken, name: str, domain: Iterable[int]):
        self.token = token
        self.name = name
        self.domain = list(domain)


class IfcChecker:
    """Checks one netlist against its declared labels."""

    def __init__(
        self,
        netlist: Netlist,
        lattice: SecurityLattice,
        max_hypotheses: int = 1 << 16,
        default_source_label: Optional[Label] = None,
    ):
        self.netlist = netlist
        self.lattice = lattice
        self.max_hypotheses = max_hypotheses
        self.default_source_label = default_source_label or bottom(lattice)
        self.inferred: Dict[Signal, Label] = {}
        self.inferred_mem: Dict[Mem, Label] = {}
        self.report = CheckReport(netlist.root.path)
        self._downgrade_errors_seen = set()
        self._comb_set = set(netlist.comb)
        self._reg_set = set(netlist.regs)
        self._input_set = set(netlist.inputs)
        self._context = "<inference>"
        self._recording = True
        self._wanted = set()          # hyp tokens consulted but unassigned
        self._local_errors: List[LabelError] = []
        # deep designs fold through long combinational chains
        import sys

        target = 10000 + 40 * len(netlist.signals)
        if sys.getrecursionlimit() < target:
            sys.setrecursionlimit(target)

    # ------------------------------------------------------------------ checking
    def check(self) -> CheckReport:
        """Run inference then discharge every obligation; returns the report."""
        self._warn_unlabelled_sources()
        self._infer()
        for sig in self.netlist.comb:
            if sig.label is not None:
                self._check_signal(sig, self.netlist.drivers[sig], is_reg=False)
        for reg in self.netlist.regs:
            if reg.label is not None:
                self._check_signal(reg, self.netlist.reg_next[reg], is_reg=True)
        for mem, writes in self.netlist.mem_writes.items():
            if mem.label is not None or mem.cell_labels is not None:
                for i, w in enumerate(writes):
                    self._check_mem_write(mem, w, i)
        from ..obs import telemetry as _telemetry

        obs = _telemetry()
        if obs is not None:
            rep = self.report
            obs.security.emit(
                "ifc_check", source=self.netlist.root.path,
                ok=rep.ok(), errors=len(rep.errors),
                checked_sinks=rep.checked_sinks,
                hypotheses_examined=rep.hypotheses_examined,
                downgrades_verified=rep.downgrades_verified)
        return self.report

    # ------------------------------------------------------------------ sources
    def _warn_unlabelled_sources(self) -> None:
        for sig in self.netlist.inputs:
            if sig.label is None:
                self.report.add_warning(
                    f"free input {sig.path} has no label; "
                    f"assuming {self.default_source_label!r}"
                )

    # ------------------------------------------------------------------ inference
    def _label_upper(self, label) -> Label:
        if isinstance(label, (DependentLabel, CellTagLabel)):
            return label.upper_bound()
        return label

    def _infer(self) -> None:
        """Fixpoint label inference for unlabelled signals and memories."""
        nl = self.netlist
        for sig in nl.signals:
            if sig.label is None:
                self.inferred[sig] = (
                    self.default_source_label
                    if sig in self._input_set
                    else bottom(self.lattice)
                )
        for mem in nl.mems:
            if mem.label is None and mem.cell_labels is None:
                self.inferred_mem[mem] = bottom(self.lattice)

        self._recording = False
        try:
            bound = 4 * (len(nl.signals) + len(nl.mems)) + 8
            for _ in range(bound):
                changed = False
                memo: Dict[int, Tuple[Optional[int], Label]] = {}
                for sig in nl.comb:
                    if sig.label is not None or sig in self._input_set:
                        continue
                    new = self._eval(nl.drivers[sig], {}, memo)[1]
                    if not new.flows_to(self.inferred[sig]):
                        self.inferred[sig] = self.inferred[sig].join(new)
                        changed = True
                for reg in nl.regs:
                    if reg.label is not None:
                        continue
                    new = self._eval(nl.reg_next[reg], {}, memo)[1]
                    if not new.flows_to(self.inferred[reg]):
                        self.inferred[reg] = self.inferred[reg].join(new)
                        changed = True
                for mem, writes in nl.mem_writes.items():
                    if mem not in self.inferred_mem:
                        continue
                    acc = self.inferred_mem[mem]
                    for w in writes:
                        acc = acc.join(self._eval(w.data, {}, memo)[1])
                        acc = acc.join(self._eval(w.addr, {}, memo)[1])
                        if w.cond is not None:
                            acc = acc.join(self._eval(w.cond, {}, memo)[1])
                    if acc != self.inferred_mem[mem]:
                        self.inferred_mem[mem] = acc
                        changed = True
                if not changed:
                    return
            self.report.add_warning("label inference did not reach a fixpoint")
        finally:
            self._recording = True

    # ------------------------------------------------------------------ label lookup
    def _signal_label(self, sig: Signal, hyp: Hypothesis,
                      memo: Dict) -> Label:
        if sig.label is None:
            return self.inferred.get(sig, self.default_source_label)
        if isinstance(sig.label, DependentLabel):
            if sig.label.selector is sig:
                # self-referential label (e.g. a tag register whose timing
                # carries its own block's level): resolve at the signal's
                # own hypothesised value
                value = hyp.get(_sig_token(sig))
                if value is None:
                    self._wanted.add(_sig_token(sig))
            else:
                value = self._resolve_value(sig.label.selector, hyp, memo)
            if value is None:
                return sig.label.upper_bound()
            return sig.label.resolve(value)
        return sig.label

    def _resolve_value(self, node: Node, hyp: Hypothesis, memo: Dict) -> Optional[int]:
        """Best-effort constant value of ``node`` under the hypothesis."""
        return self._eval(node, hyp, memo)[0]

    # ------------------------------------------------------------------ evaluation
    def _eval(self, node: Node, hyp: Hypothesis,
              memo: Dict) -> Tuple[Optional[int], Label]:
        """Partial-evaluate ``node`` under ``hyp``; returns (value?, label).

        The label accounts for every signal that can influence the value
        *given* the hypothesis: taken mux branches only, short-circuited
        operands dropped.  This is the precision that lets guarded
        (tag-checked) logic verify.
        """
        nid = id(node)
        cached = memo.get(nid)
        if cached is not None:
            return cached
        result = self._eval_uncached(node, hyp, memo)
        memo[nid] = result
        return result

    def _eval_uncached(self, node: Node, hyp: Hypothesis, memo: Dict):
        kind = node.kind
        lat = self.lattice

        if kind == "const":
            return node.value, bottom(lat)

        if kind == "signal":
            if node in self._comb_set:
                # fold-first: when logic *forces* a value under this
                # hypothesis, use the folded label — this is what makes
                # tag-guarded designs (Figs. 5/7/8) verify precisely
                fv, fl = self._eval(self.netlist.drivers[node], hyp, memo)
                if fv is not None:
                    return fv, fl
            token = _sig_token(node)
            value = hyp.get(token)
            if value is None:
                self._wanted.add(token)
            label = self._signal_label(node, hyp, memo)
            return value, label

        if kind == "unary":
            av, al = self._eval(node.a, hyp, memo)
            value = node.eval_op([av]) if av is not None else None
            return value, al

        if kind == "binary":
            av, al = self._eval(node.a, hyp, memo)
            bv, bl = self._eval(node.b, hyp, memo)
            # short-circuit precision: a constant-0 AND side (or saturated
            # OR side) fully determines the result
            if node.op == "and":
                if av == 0 and bv == 0:
                    # either side suffices to force the result; attribute it
                    # to the less restrictive one
                    return 0, (al if al.flows_to(bl) else bl)
                if av == 0:
                    return 0, al
                if bv == 0:
                    return 0, bl
            if node.op == "or":
                full = (1 << node.width) - 1
                if av is not None and av == full and node.a.width == node.width:
                    return full, al
                if bv is not None and bv == full and node.b.width == node.width:
                    return full, bl
            if av is not None and bv is not None:
                return node.eval_op([av, bv]), al.join(bl)
            return None, al.join(bl)

        if kind == "mux":
            sv, sl = self._eval(node.sel, hyp, memo)
            if sv is not None:
                branch = node.if_true if sv != 0 else node.if_false
                bv, bl = self._eval(branch, hyp, memo)
                return bv, sl.join(bl)
            tv, tl = self._eval(node.if_true, hyp, memo)
            fv, fl = self._eval(node.if_false, hyp, memo)
            if tv is not None and fv == tv:
                # both branches force the same value: the selector conveys
                # nothing through this mux
                return tv, tl.join(fl)
            return None, sl.join(tl).join(fl)

        if kind == "slice":
            av, al = self._eval(node.a, hyp, memo)
            value = node.eval_op([av]) if av is not None else None
            return value, al

        if kind == "concat":
            vals, labels = [], []
            for p in node.parts:
                pv, pl = self._eval(p, hyp, memo)
                vals.append(pv)
                labels.append(pl)
            if all(v is not None for v in vals):
                value = node.eval_op(vals)
            else:
                value = None
            return value, join_all(labels, lat)

        if kind == "memread":
            return self._eval_memread(node, hyp, memo)

        if kind == "downgrade":
            return self._eval_downgrade(node, hyp, memo)

        raise AssertionError(f"unknown node kind {kind}")

    def _mem_label(self, mem: Mem) -> Optional[Label]:
        if isinstance(mem.label, Label):
            return mem.label
        if mem.label is None and mem.cell_labels is None:
            return self.inferred_mem.get(mem, bottom(self.lattice))
        return None

    def _eval_memread(self, node, hyp: Hypothesis, memo: Dict):
        mem = node.mem
        av, al = self._eval(node.addr, hyp, memo)

        # value: hypothesised cell (tag memories), or a folded ROM lookup
        value = None
        own_token = _cell_token(mem, node.addr)
        cell_value = hyp.get(own_token)
        if cell_value is not None:
            value = cell_value
        elif mem.is_rom() and av is not None and av < mem.depth:
            value = mem.init[av]
        elif mem.meta.get("tag_role"):
            self._wanted.add(own_token)

        cell_label = self._memread_cell_label(node, hyp, memo, av)
        return value, al.join(cell_label)

    def _memread_cell_label(self, node, hyp: Hypothesis, memo: Dict,
                            av: Optional[int]) -> Label:
        """Label of the cell contents a memread returns (addr label aside)."""
        mem = node.mem
        if isinstance(mem.label, CellTagLabel):
            # data memory tagged by a sibling tag memory: the label is the
            # decoded tag of the correlated cell
            tag_token = _cell_token(mem.label.tag_mem, node.addr)
            tag_value = hyp.get(tag_token)
            if tag_value is not None:
                cell_label = mem.label.resolve(tag_value)
            else:
                self._wanted.add(tag_token)
                cell_label = mem.label.upper_bound()
        elif isinstance(mem.label, DependentLabel):
            # whole-memory label selected by a tag register (per-slot RAMs)
            sel_value = self._resolve_value(mem.label.selector, hyp, memo)
            if sel_value is not None:
                cell_label = mem.label.resolve(sel_value)
            else:
                cell_label = mem.label.upper_bound()
        elif mem.cell_labels is not None:
            if av is not None:
                cell_label = mem.cell_labels[av] if av < mem.depth else bottom(self.lattice)
            else:
                cell_label = join_all(mem.cell_labels, self.lattice)
        else:
            static = self._mem_label(mem)
            assert static is not None
            cell_label = static

        return cell_label

    def _eval_downgrade(self, node, hyp: Hypothesis, memo: Dict):
        av, al = self._eval(node.a, hyp, memo)
        target = self._resolve_labelish(node.target, hyp, memo)
        authority = self._resolve_labelish(node.authority, hyp, memo)
        msg = check_downgrade(node.kind_, al, target, authority)
        if self._recording:
            self.report.downgrades_verified += 1
        if msg is not None and self._recording:
            # collected locally: a conservative failure triggers hypothesis
            # refinement rather than an immediate report
            err = LabelError(
                sink=f"{node.kind_} in {self._context}",
                inferred=repr(al),
                declared=repr(target),
                kind="downgrade",
                hypothesis=self._hyp_names(hyp),
                detail=msg,
            )
            err._witness_thunk = (
                lambda sink=err.sink, lbl=repr(al), a=node.a, h=dict(hyp),
                       m=memo, t=target:
                self._blame(sink, lbl, [a], h, m, t))
            self._local_errors.append(err)
            # continue with the *requested* label so one failure does not
            # cascade into unrelated flow errors
        return av, downgraded_label(node.kind_, al, target)

    def _resolve_labelish(self, label, hyp: Hypothesis, memo: Dict) -> Label:
        if isinstance(label, DependentLabel):
            value = self._resolve_value(label.selector, hyp, memo)
            if value is None:
                return label.upper_bound()
            return label.resolve(value)
        if isinstance(label, Label):
            return label
        raise TypeError(f"expected Label or DependentLabel, got {type(label)}")

    # ------------------------------------------------------------------ witnesses
    def _blame(self, sink: str, sink_label: str, roots: List[Node],
               hyp: Hypothesis, memo: Dict, declared: Label) -> Witness:
        """Static counterexample: walk from ``roots`` down to the declared
        source labels that made the inferred label exceed ``declared``.

        Mirrors the partial evaluation exactly (taken branches, dropped
        short-circuit operands), unrolling unlabelled registers through
        their next-value logic and unlabelled memories through their
        writes, and stopping at *declared* sites — which is where the
        dynamic tracker's ledger walk also stops, making the two source
        sets directly comparable.
        """
        sources: Dict[str, WitnessSource] = {}
        chain: Optional[List[WitnessStep]] = None
        visited: set = set()
        for root in roots:
            s, c = self._blame_walk(root, hyp, memo, declared, visited, ())
            sources.update(s)
            if chain is None:
                chain = c
        steps = list(chain) if chain else []
        steps.append(WitnessStep(sink, "sink", None, sink_label, ()))
        return Witness(
            sink=sink, mode="static", steps=steps,
            sources=sorted(sources.values(), key=lambda s: s.path),
            hypothesis=self._hyp_names(hyp))

    def _blame_source(self, path: str, kind: str, label: Label, via: tuple):
        src = WitnessSource(path, kind, None, repr(label), True)
        step = WitnessStep(path, kind, None, repr(label), via)
        return {path: src}, [step]

    def _blame_walk(self, node: Node, hyp: Hypothesis, memo: Dict,
                    declared: Label, visited: set, via: tuple):
        """Returns ``(sources, chain)`` for one subtree: all offending
        declared-source leaves, plus one source→here step chain."""
        relaxed = memo is getattr(self, "_relaxed_blame_memo", None)
        nid = (id(node), via, relaxed)
        if nid in visited:
            return {}, None
        visited.add(nid)
        value, label = self._eval(node, hyp, memo)
        if label.flows_to(declared):
            return {}, None  # this subtree cannot be the offender
        kind = node.kind

        if kind == "signal":
            if node in self._comb_set:
                fv, fl = self._eval(self.netlist.drivers[node], hyp, memo)
                folded = fv is not None
                if folded or node.label is None:
                    s, c = self._blame_walk(
                        self.netlist.drivers[node], hyp, memo, declared,
                        visited, ())
                    if c is not None:
                        c = c + [WitnessStep(node.path, "signal", None,
                                             repr(label), via)]
                    return s, c
                return self._blame_source(node.path, "signal", label, via)
            if node in self._reg_set:
                if node.label is not None:
                    return self._blame_source(node.path, "reg", label, via)
                s, c = self._blame_walk(
                    self.netlist.reg_next[node], hyp, memo, declared,
                    visited, ())
                if not s and not relaxed:
                    # the reg's inferred label summarises *every* cycle;
                    # the offending contribution may sit in a branch this
                    # hypothesis prunes (e.g. a busy-loop body under
                    # busy=0).  Re-walk its next-state unpruned: the
                    # relaxed memo evaluates under the empty hypothesis,
                    # so no branch folds away.
                    if not hasattr(self, "_relaxed_blame_memo"):
                        self._relaxed_blame_memo = {}
                    s, c = self._blame_walk(
                        self.netlist.reg_next[node], {},
                        self._relaxed_blame_memo, declared, visited, ())
                if c is not None:
                    c = c + [WitnessStep(node.path, "reg", None,
                                         repr(label), via)]
                return s, c
            # free input — always a source site
            return self._blame_source(node.path, "input", label, via)

        if kind in ("unary", "slice"):
            return self._blame_walk(node.a, hyp, memo, declared, visited, via)

        if kind == "binary":
            av, al = self._eval(node.a, hyp, memo)
            bv, bl = self._eval(node.b, hyp, memo)
            children = [node.a, node.b]
            if node.op == "and":
                if av == 0 and bv == 0:
                    children = [node.a if al.flows_to(bl) else node.b]
                elif av == 0:
                    children = [node.a]
                elif bv == 0:
                    children = [node.b]
            elif node.op == "or":
                full = (1 << node.width) - 1
                if av is not None and av == full and \
                        node.a.width == node.width:
                    children = [node.a]
                elif bv is not None and bv == full and \
                        node.b.width == node.width:
                    children = [node.b]
            return self._blame_children(children, hyp, memo, declared,
                                        visited, via)

        if kind == "mux":
            sv, sl = self._eval(node.sel, hyp, memo)
            if sv is not None:
                branch = node.if_true if sv != 0 else node.if_false
                children = [node.sel, branch]
            else:
                tv, tl = self._eval(node.if_true, hyp, memo)
                fv, fl = self._eval(node.if_false, hyp, memo)
                if tv is not None and fv == tv:
                    children = [node.if_true, node.if_false]
                else:
                    children = [node.sel, node.if_true, node.if_false]
            return self._blame_children(children, hyp, memo, declared,
                                        visited, via)

        if kind == "concat":
            return self._blame_children(list(node.parts), hyp, memo,
                                        declared, visited, via)

        if kind == "memread":
            mem = node.mem
            av, al = self._eval(node.addr, hyp, memo)
            sources: Dict[str, WitnessSource] = {}
            chain = None
            if not al.flows_to(declared):
                sources, chain = self._blame_walk(
                    node.addr, hyp, memo, declared, visited, via)
            cell_label = self._memread_cell_label(node, hyp, memo, av)
            if not cell_label.flows_to(declared):
                if self._mem_is_declared(mem):
                    path = (f"{mem.path}[{av}]" if av is not None
                            else mem.path)
                    s, c = self._blame_source(path, "mem", cell_label, via)
                    sources.update(s)
                    if chain is None:
                        chain = c
                else:
                    # unlabelled memory: unroll through its writes
                    for w in self.netlist.mem_writes.get(mem, []):
                        wroots = [w.data, w.addr]
                        if w.cond is not None:
                            wroots.append(w.cond)
                        s, c = self._blame_children(
                            wroots, hyp, memo, declared, visited, via)
                        sources.update(s)
                        if chain is None and c is not None:
                            chain = c + [WitnessStep(
                                f"{mem.path}[{av if av is not None else '·'}]",
                                "mem", None, repr(cell_label), via)]
            return sources, chain

        if kind == "downgrade":
            target = self._resolve_labelish(node.target, hyp, memo)
            note = f"{node.kind_}->{target!r}"
            return self._blame_walk(node.a, hyp, memo, declared, visited,
                                    via + (note,))

        return {}, None

    def _blame_children(self, children: List[Node], hyp: Hypothesis,
                        memo: Dict, declared: Label, visited: set,
                        via: tuple):
        sources: Dict[str, WitnessSource] = {}
        chain = None
        for child in children:
            s, c = self._blame_walk(child, hyp, memo, declared, visited, via)
            sources.update(s)
            if chain is None:
                chain = c
        return sources, chain

    def _mem_is_declared(self, mem: Mem) -> bool:
        return mem.label is not None or mem.cell_labels is not None

    # ------------------------------------------------------------------ hypotheses
    def _collect_hyp_vars(self, roots: List[Node],
                          extra_signals: Iterable = ()) -> List[_HypVar]:
        """Find the enumerable unknowns in the cone of ``roots``.

        ``extra_signals`` entries are ``(signal, domain-or-None)`` pairs.
        """
        variables: Dict[HypToken, _HypVar] = {}
        pending: List[Node] = list(roots)
        visited = set()

        def add_signal_var(sig: Signal, domain=None):
            token = _sig_token(sig)
            if token in variables:
                return
            if domain is None:
                domain = sig.meta.get("enum_domain")
            if domain is None:
                if sig.width > MAX_ENUM_WIDTH:
                    self.report.add_warning(
                        f"selector {sig.path} too wide to enumerate "
                        f"({sig.width} bits); using conservative bound"
                    )
                    return
                domain = range(1 << sig.width)
            variables[token] = _HypVar(token, sig.path, domain)
            # resolving this signal may require folding its driver
            if sig in self._comb_set:
                pending.append(self.netlist.drivers[sig])

        for sig, domain in extra_signals:
            add_signal_var(sig, domain)

        while pending:
            root = pending.pop()
            for node in walk([root]):
                if id(node) in visited:
                    continue
                visited.add(id(node))
                if node.kind == "signal":
                    if isinstance(node.label, DependentLabel):
                        sel = node.label.selector
                        if sel.kind == "signal":
                            add_signal_var(sel, node.label.domain)
                        if sel in self._comb_set:
                            pending.append(self.netlist.drivers[sel])
                    if node.meta.get("enumerate"):
                        add_signal_var(node)
                    if node in self._comb_set:
                        pending.append(self.netlist.drivers[node])
                elif node.kind == "memread":
                    mem = node.mem
                    if isinstance(mem.label, DependentLabel):
                        sel = mem.label.selector
                        if sel.kind == "signal":
                            add_signal_var(sel, mem.label.domain)
                            if sel in self._comb_set:
                                pending.append(self.netlist.drivers[sel])
                    if isinstance(mem.label, CellTagLabel):
                        # the correlated tag cell becomes an unknown
                        token = _cell_token(mem.label.tag_mem, node.addr)
                        if token not in variables:
                            variables[token] = _HypVar(
                                token,
                                f"{mem.label.tag_mem.path}[{_describe_addr(node.addr)}]",
                                mem.label.domain,
                            )
                    if mem.meta.get("tag_role") and isinstance(
                        mem.meta.get("tag_domain"), (list, range)
                    ):
                        token = _cell_token(mem, node.addr)
                        if token not in variables:
                            variables[token] = _HypVar(
                                token,
                                f"{mem.path}[{_describe_addr(node.addr)}]",
                                mem.meta["tag_domain"],
                            )
                elif node.kind == "downgrade":
                    for lbl in (node.target, node.authority):
                        if isinstance(lbl, DependentLabel) and lbl.selector.kind == "signal":
                            add_signal_var(lbl.selector, lbl.domain)
                            if lbl.selector in self._comb_set:
                                pending.append(self.netlist.drivers[lbl.selector])
        return list(variables.values())

    def _refine(self, sink: str, variables: List[_HypVar], evaluate) -> None:
        """Demand-driven case analysis.

        ``evaluate(hyp)`` returns the list of label errors found under the
        (possibly partial) hypothesis, with unknowns treated conservatively;
        it also fills ``self._wanted`` with the hypothesis tokens whose
        values were consulted but unassigned.  A clean conservative pass
        needs no case split; a failure is refined only along *consulted*
        unknowns, so irrelevant variables never multiply the search.
        """
        by_token = {v.token: v for v in variables}
        potential = 1
        for v in variables:
            potential *= max(1, len(v.domain))
        self.report.hypotheses_potential += min(potential, 1 << 62)
        budget = [self.max_hypotheses]

        def recurse(hyp: Hypothesis) -> None:
            if budget[0] <= 0:
                return
            budget[0] -= 1
            self.report.hypotheses_examined += 1
            errors = evaluate(hyp)
            if not errors:
                return
            candidates = [
                t for t in self._wanted if t in by_token and t not in hyp
            ]
            if not candidates:
                for e in errors:
                    key = (e.sink, e.kind, e.detail, e.inferred, e.declared)
                    if key in self._downgrade_errors_seen:
                        continue
                    self._downgrade_errors_seen.add(key)
                    # materialise the counterexample witness only for
                    # errors that actually get reported (blame walks are
                    # not free; discarded refinement cases skip them)
                    thunk = getattr(e, "_witness_thunk", None)
                    if thunk is not None and e.witness is None:
                        e.witness = thunk()
                    self.report.add_error(e)
                return
            # split on the consulted unknown with the smallest domain
            tok = min(candidates, key=lambda t: len(by_token[t].domain))
            for value in by_token[tok].domain:
                hyp2 = dict(hyp)
                hyp2[tok] = value
                recurse(hyp2)

        recurse({})
        if budget[0] <= 0:
            self.report.add_error(
                LabelError(
                    sink=sink,
                    inferred="?",
                    declared="?",
                    kind="structure",
                    detail=(
                        f"hypothesis refinement budget exhausted "
                        f"(> {self.max_hypotheses} cases); restrict "
                        f"dependent-label domains or split the module"
                    ),
                )
            )

    def _hyp_names(self, hyp: Hypothesis) -> Dict[str, int]:
        """Human-readable hypothesis for error messages."""
        named = {}
        for token, value in hyp.items():
            named[self._token_name(token)] = value
        return named

    def _token_name(self, token: HypToken) -> str:
        if token[0] == "sig":
            for sig in self.netlist.signals:
                if id(sig) == token[1]:
                    return sig.path
        if token[0] == "cell":
            for mem in self.netlist.mems:
                if id(mem) == token[1]:
                    return f"{mem.path}[·]"
        return str(token)

    # ------------------------------------------------------------------ obligations
    def _check_signal(self, sig: Signal, driver: Node, is_reg: bool) -> None:
        self.report.checked_sinks += 1
        self._context = sig.path
        roots = [driver]

        selector_next = None
        dep = sig.label if isinstance(sig.label, DependentLabel) else None
        extra: List[Tuple[Signal, Optional[List[int]]]] = []
        if dep is not None:
            sel = dep.selector
            if is_reg and sel.kind == "signal" and sel in self._reg_set:
                selector_next = self.netlist.reg_next[sel]
                roots.append(selector_next)
                extra.append((sel, dep.domain))
            elif sel.kind == "signal" and (
                sel in self._reg_set or sel in self._input_set
            ):
                extra.append((sel, dep.domain))
            elif sel.kind == "signal" and sel in self._comb_set:
                roots.append(self.netlist.drivers[sel])

        variables = self._collect_hyp_vars(roots, extra)

        def evaluate(hyp: Hypothesis) -> List[LabelError]:
            self._wanted = set()
            self._local_errors = []
            self._context = sig.path
            memo: Dict = {}
            value, label = self._eval(driver, hyp, memo)

            if dep is None:
                declared = sig.label
                assert isinstance(declared, Label)
            else:
                if selector_next is not None:
                    sel_value = self._eval(selector_next, hyp, memo)[0]
                else:
                    sel_value = self._resolve_value(dep.selector, hyp, memo)
                if sel_value is None:
                    # sink position: unresolved selector must use the meet
                    # (strictest) so unproven correlations force refinement
                    declared = dep.lower_bound()
                else:
                    declared = dep.resolve(sel_value)

            errors = list(self._local_errors)
            if not label.flows_to(declared):
                err = LabelError(
                    sink=sig.path,
                    inferred=repr(label),
                    declared=repr(declared),
                    kind="flow",
                    hypothesis=self._hyp_names(hyp),
                )
                err._witness_thunk = (
                    lambda lbl=repr(label), h=dict(hyp), m=memo, d=declared:
                    self._blame(sig.path, lbl, [driver], h, m, d))
                errors.append(err)
            return errors

        self._refine(sig.path, variables, evaluate)

    def _check_mem_write(self, mem: Mem, write, index: int) -> None:
        self.report.checked_sinks += 1
        sink_name = f"{mem.path}[write {index}]"
        self._context = sink_name
        roots = [write.addr, write.data]
        if write.cond is not None:
            roots.append(write.cond)
        if write.tag is not None:
            roots.append(write.tag)

        # whole-memory dependent label: the write lands next cycle, when the
        # selector (a tag register updated in the same cycle) has its *next*
        # value — mirror the register-sink rule
        dep_label = mem.label if isinstance(mem.label, DependentLabel) else None
        dep_selector_next = None
        extra: List[Tuple[Signal, Optional[List[int]]]] = []
        if dep_label is not None:
            sel = dep_label.selector
            if sel.kind == "signal" and sel in self._reg_set:
                dep_selector_next = self.netlist.reg_next[sel]
                roots.append(dep_selector_next)
                extra.append((sel, dep_label.domain))
            elif sel.kind == "signal" and sel in self._input_set:
                extra.append((sel, dep_label.domain))
            elif sel.kind == "signal" and sel in self._comb_set:
                roots.append(self.netlist.drivers[sel])
        variables = self._collect_hyp_vars(roots, extra)

        # writing into a tagged memory: the destination cell's tag is an
        # additional unknown, correlated through the write address
        cell_label_spec = mem.label if isinstance(mem.label, CellTagLabel) else None
        if cell_label_spec is not None:
            token = _cell_token(cell_label_spec.tag_mem, write.addr)
            if token not in [v.token for v in variables]:
                variables.append(
                    _HypVar(
                        token,
                        f"{cell_label_spec.tag_mem.path}[waddr]",
                        cell_label_spec.domain,
                    )
                )

        def evaluate(hyp: Hypothesis) -> List[LabelError]:
            self._wanted = set()
            self._local_errors = []
            self._context = sink_name
            memo: Dict = {}
            if write.cond is not None:
                cv, cl = self._eval(write.cond, hyp, memo)
                if cv == 0:
                    return []  # write provably suppressed in this case
            else:
                cl = bottom(self.lattice)
            av, al = self._eval(write.addr, hyp, memo)
            dv, dl = self._eval(write.data, hyp, memo)
            flow = cl.join(al).join(dl)

            if cell_label_spec is not None:
                if write.tag is not None:
                    # the write explicitly names the tag the cell will carry
                    tag_value = self._eval(write.tag, hyp, memo)[0]
                    if tag_value is not None:
                        declared = cell_label_spec.resolve(tag_value)
                    else:
                        declared = cell_label_spec.lower_bound()
                else:
                    token = _cell_token(cell_label_spec.tag_mem, write.addr)
                    tag_value = hyp.get(token)
                    if tag_value is not None:
                        declared = cell_label_spec.resolve(tag_value)
                    else:
                        self._wanted.add(token)
                        declared = cell_label_spec.lower_bound()
            elif dep_label is not None:
                if dep_selector_next is not None:
                    sel_value = self._eval(dep_selector_next, hyp, memo)[0]
                else:
                    sel_value = self._resolve_value(dep_label.selector, hyp, memo)
                if sel_value is not None:
                    declared = dep_label.resolve(sel_value)
                else:
                    declared = dep_label.lower_bound()
            elif mem.cell_labels is not None:
                if av is not None and av < mem.depth:
                    declared = mem.cell_labels[av]
                else:
                    declared = meet_all(mem.cell_labels, self.lattice)
            else:
                declared = mem.label
                assert isinstance(declared, Label)

            errors = list(self._local_errors)
            if not flow.flows_to(declared):
                err = LabelError(
                    sink=sink_name,
                    inferred=repr(flow),
                    declared=repr(declared),
                    kind="flow",
                    hypothesis=self._hyp_names(hyp),
                )
                wroots = [write.data, write.addr]
                if write.cond is not None:
                    wroots.append(write.cond)
                err._witness_thunk = (
                    lambda lbl=repr(flow), h=dict(hyp), m=memo, d=declared,
                           r=wroots:
                    self._blame(sink_name, lbl, r, h, m, d))
                errors.append(err)
            return errors

        self._refine(sink_name, variables, evaluate)


def _describe_addr(addr: Node) -> str:
    if addr.kind == "signal":
        return addr.path
    if addr.kind == "const":
        return str(addr.value)
    return "addr"


def check_design(netlist_or_module, lattice: SecurityLattice,
                 **kwargs) -> CheckReport:
    """Convenience wrapper: elaborate if needed, check, return the report."""
    from ..hdl.elaborate import elaborate
    from ..hdl.module import Module

    nl = elaborate(netlist_or_module) if isinstance(netlist_or_module, Module) \
        else netlist_or_module
    return IfcChecker(nl, lattice, **kwargs).check()


def check_module_shallow(module, lattice: SecurityLattice,
                         **kwargs) -> CheckReport:
    """Modular check: verify one module against its (and its children's)
    port labels, treating child instances as opaque."""
    from ..hdl.elaborate import elaborate_shallow

    nl = elaborate_shallow(module)
    return IfcChecker(nl, lattice, **kwargs).check()
