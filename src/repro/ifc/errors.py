"""Structured IFC violation reports (the Fig. 6 "label error" experience).

The checker never raises on a violation — it accumulates
:class:`LabelError` records into a :class:`CheckReport` so a whole design
can be audited in one pass, mirroring how a security-typed HDL reports
every type error it finds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .witness import Witness


class LabelError:
    """One disallowed flow: inferred label ⋢ declared label at a sink."""

    def __init__(
        self,
        sink: str,
        inferred: str,
        declared: str,
        kind: str = "flow",
        hypothesis: Optional[Dict[str, int]] = None,
        detail: str = "",
        witness: Optional["Witness"] = None,
    ):
        self.sink = sink
        self.inferred = inferred
        self.declared = declared
        self.kind = kind  # "flow" | "downgrade" | "structure"
        self.hypothesis = dict(hypothesis) if hypothesis else {}
        self.detail = detail
        #: static counterexample: node path from the offending source
        #: label(s) to the sink, under ``hypothesis`` (set by the checker
        #: for reported errors; ``None`` for structure errors)
        self.witness = witness

    def __repr__(self) -> str:
        hyp = ""
        if self.hypothesis:
            assigns = ", ".join(f"{k}={v}" for k, v in sorted(self.hypothesis.items()))
            hyp = f" [under {assigns}]"
        msg = f"{self.kind} error at {self.sink}: {self.inferred} ⋢ {self.declared}{hyp}"
        if self.detail:
            msg += f" — {self.detail}"
        return msg


class CheckReport:
    """Outcome of one static-check or dynamic-tracking run."""

    def __init__(self, design: str):
        self.design = design
        self.errors: List[LabelError] = []
        self.warnings: List[str] = []
        self.checked_sinks: int = 0
        self.hypotheses_examined: int = 0
        #: cases a naive exhaustive enumeration of all collected variables
        #: would have required (the refinement ablation's denominator)
        self.hypotheses_potential: int = 0
        self.downgrades_verified: int = 0

    def ok(self) -> bool:
        return not self.errors

    def add_error(self, error: LabelError) -> None:
        self.errors.append(error)

    def add_warning(self, message: str) -> None:
        self.warnings.append(message)

    def errors_at(self, sink_substring: str) -> List[LabelError]:
        return [e for e in self.errors if sink_substring in e.sink]

    def distinct_sinks(self) -> List[str]:
        seen: List[str] = []
        for e in self.errors:
            if e.sink not in seen:
                seen.append(e.sink)
        return seen

    def summary(self) -> str:
        lines = [
            f"IFC check of {self.design}: "
            f"{'PASS' if self.ok() else 'FAIL'} "
            f"({self.checked_sinks} sinks, {self.hypotheses_examined} hypotheses, "
            f"{self.downgrades_verified} downgrades verified, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings)"
        ]
        for e in self.errors:
            lines.append(f"  {e!r}")
        for w in self.warnings:
            lines.append(f"  warning: {w}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Machine-readable form (for CI tooling and report archival)."""
        return {
            "design": self.design,
            "ok": self.ok(),
            "checked_sinks": self.checked_sinks,
            "hypotheses_examined": self.hypotheses_examined,
            "hypotheses_potential": self.hypotheses_potential,
            "downgrades_verified": self.downgrades_verified,
            "errors": [
                {
                    "sink": e.sink,
                    "kind": e.kind,
                    "inferred": e.inferred,
                    "declared": e.declared,
                    "hypothesis": e.hypothesis,
                    "detail": e.detail,
                    "witness": e.witness.as_dict() if e.witness else None,
                }
                for e in self.errors
            ],
            "warnings": list(self.warnings),
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.as_dict(), indent=indent)

    def __repr__(self) -> str:
        status = "PASS" if self.ok() else f"FAIL({len(self.errors)})"
        return f"<CheckReport {self.design}: {status}>"
