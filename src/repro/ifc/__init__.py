"""repro.ifc — hardware-level information-flow control.

Implements the security machinery of the paper: the two-dimensional
(confidentiality, integrity) label lattice, dependent labels, the
nonmalleable downgrading rules (Eq. 1), the static checker that plays
ChiselFlow's role, and a dynamic RTLIFT-style tracker.
"""

from .checker import IfcChecker, check_design, check_module_shallow
from .dependent import CellTagLabel, DependentLabel, resolve_label, tag_label
from .errors import CheckReport, LabelError
from .glift import GliftTracker, TaintViolation
from .label import (
    Label,
    bottom,
    join_all,
    meet_all,
    public_trusted,
    public_untrusted,
    secret_trusted,
    top,
)
from .lattice import SecurityLattice, two_point
from .nonmalleable import (
    check_downgrade,
    declassified,
    endorsed,
    may_declassify,
    may_endorse,
)
from .policy import TABLE1_POLICIES, FlowPolicy, PolicyCheckResult
from .synth import (
    SynthViolation,
    TagPlan,
    TagSite,
    TagView,
    decode_tag,
    encode_tag,
    synthesize_tags,
)
from .tracker import LabelTracker, TrackViolation

__all__ = [
    "CellTagLabel",
    "CheckReport",
    "DependentLabel",
    "FlowPolicy",
    "GliftTracker",
    "IfcChecker",
    "Label",
    "LabelError",
    "LabelTracker",
    "PolicyCheckResult",
    "SecurityLattice",
    "SynthViolation",
    "TABLE1_POLICIES",
    "TagPlan",
    "TagSite",
    "TagView",
    "TaintViolation",
    "TrackViolation",
    "bottom",
    "check_design",
    "check_downgrade",
    "check_module_shallow",
    "declassified",
    "decode_tag",
    "encode_tag",
    "endorsed",
    "join_all",
    "synthesize_tags",
    "may_declassify",
    "may_endorse",
    "meet_all",
    "public_trusted",
    "public_untrusted",
    "resolve_label",
    "secret_trusted",
    "tag_label",
    "top",
    "two_point",
]
