"""Security lattices for 2-tuple (confidentiality, integrity) labels.

The paper (§2.3–§2.4) uses labels ``ℓ = (c, i)`` drawn from a product of a
confidentiality lattice and an integrity lattice, with:

* ``ℓ ⊑C ℓ′`` — ℓ′ has higher (more restrictive) confidentiality;
* ``ℓ ⊑I ℓ′`` — ℓ has *higher integrity* (information may flow from more
  trusted to less trusted);
* a reflection operator ``r(·)`` between the two dimensions with
  ``r(P) = U`` and ``r(U) = P`` (and dually ``r(S) = T``, ``r(T) = S``).

We realise both dimensions over a set of *principals* (the "4 bits for
confidentiality and 4 bits for integrity" tag encoding of §4 corresponds
to four principal slots):

* a confidentiality element is the set of principals whose secrets the
  data may contain — ``∅`` is fully public (⊥), the full set is fully
  secret (⊤);
* an integrity element is the set of principals who *vouch* for the data
  — the full set is fully trusted (the paper's integrity ⊤), ``∅`` is
  completely untrusted (the paper's integrity ⊥).  Flow order is reversed
  set inclusion: trusted data may flow anywhere, untrusted data may not
  flow into trusted sinks.

With this encoding the paper's reflection operator is literally the
identity on the underlying principal set: ``r`` maps the confidentiality
element ``c`` to the integrity element whose vouch set is ``c`` and vice
versa, giving ``r(P)=r(∅)=U`` and ``r(S)=r(full)=T`` exactly as stated,
and making the §3.2.2 master-key argument (``ck ⊑C r(iu)``) compute the
natural thing: a user may declassify ciphertext produced with keys whose
confidentiality is covered by the user's own vouch set.

The one-principal instance is the paper's two-point lattice
(P/S × U/T); the four-principal instance is the accelerator's 8-bit tag.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple, Union

ConfElem = FrozenSet[str]
IntegElem = FrozenSet[str]


class SecurityLattice:
    """Product lattice of confidentiality and integrity over principals."""

    def __init__(self, principals: Sequence[str]):
        if not principals:
            raise ValueError("need at least one principal")
        if len(set(principals)) != len(principals):
            raise ValueError("duplicate principal names")
        self.principals: Tuple[str, ...] = tuple(principals)
        self._index: Dict[str, int] = {p: i for i, p in enumerate(self.principals)}
        self.full: FrozenSet[str] = frozenset(self.principals)
        self.empty: FrozenSet[str] = frozenset()

    # -- element construction ---------------------------------------------------
    def conf(self, spec: Union[str, Iterable[str]]) -> ConfElem:
        """Build a confidentiality element.

        ``"public"`` → ∅, ``"secret"`` → all principals, a principal name
        or iterable of names → that set.
        """
        return self._elem(spec, bottom_name="public", top_name="secret")

    def integ(self, spec: Union[str, Iterable[str]]) -> IntegElem:
        """Build an integrity element (a vouch set).

        ``"trusted"`` → all principals vouch (the paper's ⊤),
        ``"untrusted"`` → nobody vouches (the paper's ⊥), a principal
        name or iterable → exactly those vouch.
        """
        return self._elem(spec, bottom_name="untrusted", top_name="trusted",
                          bottom_is_empty=True, invert=False)

    def _elem(self, spec, bottom_name: str, top_name: str,
              bottom_is_empty: bool = True, invert: bool = False) -> FrozenSet[str]:
        if isinstance(spec, frozenset):
            unknown = spec - self.full
            if unknown:
                raise KeyError(f"unknown principals {sorted(unknown)}")
            return spec
        if isinstance(spec, str):
            if spec == bottom_name:
                return self.empty
            if spec == top_name:
                return self.full
            if spec in self._index:
                return frozenset((spec,))
            raise KeyError(
                f"unknown principal or level {spec!r} "
                f"(principals: {list(self.principals)})"
            )
        members = frozenset(spec)
        unknown = members - self.full
        if unknown:
            raise KeyError(f"unknown principals {sorted(unknown)}")
        return members

    # -- confidentiality dimension (flow order: subset ⇒ may flow) ---------------
    def conf_leq(self, a: ConfElem, b: ConfElem) -> bool:
        """``a ⊑C b`` — data at a may flow to a sink at b."""
        return a <= b

    def conf_join(self, a: ConfElem, b: ConfElem) -> ConfElem:
        return a | b

    def conf_meet(self, a: ConfElem, b: ConfElem) -> ConfElem:
        return a & b

    @property
    def conf_bottom(self) -> ConfElem:  # public
        return self.empty

    @property
    def conf_top(self) -> ConfElem:  # secret
        return self.full

    # -- integrity dimension (flow order: superset vouch ⇒ may flow) --------------
    def integ_leq(self, a: IntegElem, b: IntegElem) -> bool:
        """``a ⊑I b`` — a has at least b's integrity, so a may flow to b."""
        return a >= b

    def integ_join(self, a: IntegElem, b: IntegElem) -> IntegElem:
        """Join in the flow order: combination is only as trusted as both."""
        return a & b

    def integ_meet(self, a: IntegElem, b: IntegElem) -> IntegElem:
        return a | b

    @property
    def integ_bottom(self) -> IntegElem:  # fully trusted (paper's integrity ⊤)
        return self.full

    @property
    def integ_top(self) -> IntegElem:  # completely untrusted (paper's ⊥)
        return self.empty

    # -- reflection r(·) between the dimensions (§2.4) ----------------------------
    def reflect_ci(self, c: ConfElem) -> IntegElem:
        """Project confidentiality to integrity: ``r(P)=U``, ``r(S)=T``."""
        return c

    def reflect_ic(self, i: IntegElem) -> ConfElem:
        """Project integrity to confidentiality: ``r(U)=P``, ``r(T)=S``."""
        return i

    # -- hardware tag encoding (§4: 4+4-bit tags) ---------------------------------
    @property
    def tag_width(self) -> int:
        """Bits in an encoded (conf, integ) tag: one bit per principal and
        dimension."""
        return 2 * len(self.principals)

    def encode_conf(self, c: ConfElem) -> int:
        bits = 0
        for p in c:
            bits |= 1 << self._index[p]
        return bits

    def decode_conf(self, bits: int) -> ConfElem:
        return frozenset(
            p for p, i in self._index.items() if bits & (1 << i)
        )

    def encode_integ(self, i: IntegElem) -> int:
        return self.encode_conf(i)

    def decode_integ(self, bits: int) -> IntegElem:
        return self.decode_conf(bits)

    def conf_names(self, c: ConfElem) -> str:
        if c == self.empty:
            return "public"
        if c == self.full:
            return "secret"
        return "{" + ",".join(sorted(c)) + "}"

    def integ_names(self, i: IntegElem) -> str:
        if i == self.full:
            return "trusted"
        if i == self.empty:
            return "untrusted"
        return "vouch{" + ",".join(sorted(i)) + "}"

    def all_conf(self) -> List[ConfElem]:
        """All 2^n confidentiality elements (for exhaustive property tests)."""
        out = []
        n = len(self.principals)
        for bits in range(1 << n):
            out.append(self.decode_conf(bits))
        return out

    def all_integ(self) -> List[IntegElem]:
        return self.all_conf()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SecurityLattice)
            and other.principals == self.principals
        )

    def __hash__(self) -> int:
        return hash(self.principals)

    def __repr__(self) -> str:
        return f"SecurityLattice({list(self.principals)})"


def two_point() -> SecurityLattice:
    """The paper's two-level lattice: P/S confidentiality, U/T integrity."""
    return SecurityLattice(("*",))
