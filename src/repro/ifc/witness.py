"""Witness chains — inspectable evidence for IFC verdicts.

Both flow oracles produce the same evidence shape:

* the **dynamic** tracker (:mod:`repro.ifc.tracker`) walks its
  cycle-accurate provenance ledger backwards from a sink to the label
  sources that fed it;
* the **static** checker (:mod:`repro.ifc.checker`) walks the netlist
  from a failing sink to the declared source labels that made the
  inferred label too high, under the failing hypothesis.

A :class:`Witness` is the common currency: an ordered source→sink chain
of :class:`WitnessStep` hops plus the full set of label *sources* that
reach the sink, each marked offending or not.  ``repro.obs.flows``
renders and compares them; the acceptance gate is that the static and
dynamic witnesses for the same scenario name the same offending source
set.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

_INDEX_RE = re.compile(r"\[\d+\]$")


def normalize_source(path: str) -> str:
    """Base name of a source site: memory cell indices are stripped.

    The static checker reasons about a cell *symbolically* (under a
    hypothesis) while the tracker sees the concrete address, so source
    sets are compared at the granularity of the declared site.
    """
    return _INDEX_RE.sub("", path)


class WitnessStep:
    """One hop of a source→sink chain."""

    __slots__ = ("path", "kind", "cycle", "label", "via")

    def __init__(self, path: str, kind: str, cycle: Optional[int],
                 label: str, via: Sequence[str] = ()):
        self.path = path
        #: "input" | "reg" | "signal" | "mem" | "sink"
        self.kind = kind
        #: simulation cycle (dynamic) or ``None`` (static, cycle-abstract)
        self.cycle = cycle
        self.label = label
        #: downgrade / guard decision points crossed to produce this hop
        self.via = tuple(via)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "cycle": self.cycle,
            "label": self.label,
            "via": list(self.via),
        }

    def __repr__(self) -> str:
        at = "" if self.cycle is None else f"@{self.cycle}"
        via = f" via {', '.join(self.via)}" if self.via else ""
        return f"{self.path}{at} [{self.label}]{via}"


class WitnessSource:
    """One label source reaching the sink (offending or declassified)."""

    __slots__ = ("path", "base", "kind", "cycle", "label", "offending")

    def __init__(self, path: str, kind: str, cycle: Optional[int],
                 label: str, offending: bool):
        self.path = path
        self.base = normalize_source(path)
        self.kind = kind
        self.cycle = cycle
        self.label = label
        self.offending = offending

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "base": self.base,
            "kind": self.kind,
            "cycle": self.cycle,
            "label": self.label,
            "offending": self.offending,
        }

    def __repr__(self) -> str:
        mark = "!" if self.offending else " "
        return f"{mark}{self.path} [{self.label}]"


class Witness:
    """Source→sink evidence chain for one flow verdict."""

    __slots__ = ("sink", "mode", "steps", "sources", "hypothesis")

    def __init__(self, sink: str, mode: str,
                 steps: Sequence[WitnessStep],
                 sources: Sequence[WitnessSource],
                 hypothesis: Optional[Dict[str, int]] = None):
        self.sink = sink
        self.mode = mode  # "dynamic" | "static"
        self.steps = list(steps)
        self.sources = list(sources)
        self.hypothesis = dict(hypothesis) if hypothesis else {}

    def source_set(self, offending_only: bool = True) -> frozenset:
        """Normalised base names of the sources (the comparison key)."""
        return frozenset(
            s.base for s in self.sources if s.offending or not offending_only
        )

    def crossed(self) -> List[str]:
        """All downgrade/guard decision points on the chain, in order."""
        out: List[str] = []
        for step in self.steps:
            out.extend(step.via)
        return out

    def as_dict(self) -> dict:
        return {
            "sink": self.sink,
            "mode": self.mode,
            "steps": [s.as_dict() for s in self.steps],
            "sources": [s.as_dict() for s in self.sources],
            "hypothesis": dict(self.hypothesis),
        }

    def render(self) -> str:
        return render_witness(self)

    def __repr__(self) -> str:
        n = len(self.steps)
        return f"<Witness {self.mode} →{self.sink}: {n} hops, " \
               f"{len(self.source_set())} offending sources>"


def render_witness(witness: Witness, indent: str = "  ") -> str:
    """Human-readable rendering shared by both oracles.

    ::

        dynamic witness -> aes.dbg_data
          aes.in_data@12 [({p0}, {p0})]           <- source
          aes.pipe.s1_data@14 [({p0}, {p0})]
          aes.debug.trace[0]@15 [({p0}, {p0})]
          aes.dbg_data@31 [({p0}, {p0})]          <- sink
        offending sources: aes.in_data
    """
    lines = [f"{witness.mode} witness -> {witness.sink}"]
    if witness.hypothesis:
        assigns = ", ".join(
            f"{k}={v}" for k, v in sorted(witness.hypothesis.items()))
        lines.append(f"{indent}under hypothesis: {assigns}")
    last = len(witness.steps) - 1
    for i, step in enumerate(witness.steps):
        mark = ""
        if i == 0:
            mark = "  <- source"
        elif i == last:
            mark = "  <- sink"
        lines.append(f"{indent}{step!r}{mark}")
    offending = sorted(witness.source_set(offending_only=True))
    released = sorted(witness.source_set(offending_only=False) -
                      witness.source_set(offending_only=True))
    if offending:
        lines.append(f"offending sources: {', '.join(offending)}")
    else:
        lines.append("offending sources: (none)")
    if released:
        lines.append(f"non-offending sources: {', '.join(released)}")
    crossed = witness.crossed()
    if crossed:
        lines.append(f"decision points crossed: {', '.join(crossed)}")
    return "\n".join(lines)


def sources_agree(static_sources: Iterable[str],
                  dynamic_sources: Iterable[str]) -> bool:
    """The acceptance predicate: the two oracles name the same sources.

    The static checker quantifies over *all* hypotheses, so its offending
    set is an over-approximation (e.g. every per-slot key RAM); one
    concrete run can only witness the slots it exercised.  Agreement is
    therefore: both empty (clean design), or the dynamic set is a
    non-empty subset of the static set — every runtime-named source must
    also be statically blamed, and a static verdict with no runtime
    corroboration at all is a mismatch.
    """
    s = frozenset(static_sources)
    d = frozenset(dynamic_sources)
    if not s and not d:
        return True
    return bool(d) and d <= s


def merge_source_sets(witnesses: Iterable[Optional[Witness]]) -> frozenset:
    """Union of the offending source sets over several witnesses."""
    out: frozenset = frozenset()
    for w in witnesses:
        if w is not None:
            out = out | w.source_set()
    return out
