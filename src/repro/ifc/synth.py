"""Synthesized shadow-tag tracking: labels as ordinary netlist logic.

The paper's central claim is that information-flow enforcement can be
*synthesized hardware*, not an interpreter bolted onto the side.  The
runtime :class:`~repro.ifc.tracker.LabelTracker` proves policies on
concrete runs, but it steps in Python outside the simulator's fast path
— three orders of magnitude below the batched backend's lane rate.

:func:`synthesize_tags` closes that gap the same way the fault injector
does (:func:`repro.faults.plan.instrument`): as a **netlist-to-netlist
transformation**.  Every signal ``s`` is widened with two shadow nets

* ``s__conf``  — one bit per principal: the confidentiality set the
  value may draw from (bit set ⇒ may contain that principal's secrets);
* ``s__integ`` — one bit per principal, in **distrust** encoding: bit
  set ⇒ that principal does *not* vouch for the value.

With distrust bits, both planes join by bitwise OR and the bottom label
``(public, trusted)`` encodes as all-zeros — exactly what a freshly
reset input or register holds, so untouched state starts at ⊥ just like
the interpreted tracker's default.  GLIFT-style propagation logic is
emitted per node kind, mirroring the tracker's value-aware precision
rules (a zero AND-operand absorbs, a mux passes only the taken branch's
tag, a full-ones OR-operand absorbs), so the transformed netlist and the
interpreted oracle agree cycle for cycle.  Declassify/endorse markers
become dedicated *downgrade cells* that compute the nonmalleable result
label in tag bits and raise a blocked-downgrade flag when Eq. (1) fails.

Declared sinks (labelled wires, registers, and memory writes) get a
1-bit violation net plus sticky/first-cycle/count registers, so a whole
campaign can run at full speed and be audited afterwards through
:class:`TagView` — which also forwards violations to the ``repro.obs``
security-event stream under ``source="synth"``.

All three simulation backends consume the same transformed netlist, so
tag semantics are identical across the interpreter, the compiled
backend, and the numpy batched backend *by construction* — each batched
lane carries its own independent tag vectors.  The interpreted
:class:`LabelTracker` stays untouched as the differential-test oracle
(``tests/ifc/test_synth_differential.py``).

Known, documented divergence from the oracle: downgrade cells are
*eager* — a marker sitting on the untaken branch of a mux is still
checked every cycle by the synthesized logic, while the lazily
evaluating tracker skips it.  Value tags are unaffected (the mux
forwards only the taken branch's tag either way); only blocked-downgrade
*events* can be a superset of the tracker's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist, MemWrite
from ..hdl.nodes import (
    BinaryOp,
    Const,
    MemRead,
    Mux,
    Node,
    UnaryOp,
)
from ..hdl.signal import Signal, SignalKind
from ..hdl.types import mask_for
from ..ifc.dependent import CellTagLabel, DependentLabel
from ..ifc.label import Label, bottom
from ..ifc.lattice import SecurityLattice

#: width of the first-violation-cycle / occurrence counters
_CYCLE_W = 32


# -- tag encoding ---------------------------------------------------------------

def encode_tag(lattice: SecurityLattice, label: Label) -> Tuple[int, int]:
    """Encode a label as ``(conf bits, distrust bits)`` shadow-net values.

    Confidentiality is the usual one-bit-per-principal set; integrity is
    stored *inverted* (distrust = complement of the vouch set) so that
    both planes join by OR and all-zero means ``(public, trusted)``.
    """
    n = len(lattice.principals)
    mask = (1 << n) - 1
    return (lattice.encode_conf(label.conf),
            mask ^ lattice.encode_integ(label.integ))


def decode_tag(lattice: SecurityLattice, conf_bits: int,
               distrust_bits: int) -> Label:
    """Inverse of :func:`encode_tag`."""
    n = len(lattice.principals)
    mask = (1 << n) - 1
    return Label(lattice,
                 lattice.decode_conf(conf_bits & mask),
                 lattice.decode_integ(mask ^ (distrust_bits & mask)))


# -- transform result -----------------------------------------------------------

class TagSite:
    """One synthesized check point: a declared sink or a downgrade cell.

    ``kind`` is ``"flow"`` (declared wire / register / memory write) or
    ``"downgrade"`` (a declassify/endorse marker's nonmalleability
    check).  ``now`` is the 1-bit combinational violation net for the
    current cycle; ``sticky``/``first_cycle``/``count`` are the audit
    registers derived from it.
    """

    __slots__ = ("path", "kind", "declared", "now", "sticky", "first_cycle",
                 "count")

    def __init__(self, path: str, kind: str, declared: str, now: Signal,
                 sticky: Signal, first_cycle: Signal, count: Signal):
        self.path = path
        self.kind = kind
        self.declared = declared
        self.now = now
        self.sticky = sticky
        self.first_cycle = first_cycle
        self.count = count

    def __repr__(self) -> str:
        return f"TagSite({self.kind}, {self.path})"


class TagPlan:
    """Everything :class:`TagView` needs to read the shadow state."""

    def __init__(self, lattice: SecurityLattice, precise: bool):
        self.lattice = lattice
        self.precise = precise
        n = len(lattice.principals)
        self.nbits = n
        #: original signal -> shadow conf / distrust nets
        self.conf: Dict[Signal, Signal] = {}
        self.integ: Dict[Signal, Signal] = {}
        #: inputs whose tags are free (poke-able); excludes dependent-labelled
        self.tag_inputs: Dict[Signal, Tuple[Signal, Signal]] = {}
        #: original memory -> shadow conf / distrust memories
        self.mem_conf: Dict[Mem, Mem] = {}
        self.mem_integ: Dict[Mem, Mem] = {}
        self.sites: List[TagSite] = []
        self.cycle_reg: Optional[Signal] = None
        self.alarm: Optional[Signal] = None

    def stats(self) -> Dict[str, int]:
        """Tag-net counts for the ``repro ifc synth`` report."""
        flow = sum(1 for s in self.sites if s.kind == "flow")
        return {
            "principals": self.nbits,
            "tag_nets": 2 * len(self.conf),
            "tag_net_bits": 2 * self.nbits * len(self.conf),
            "free_tag_inputs": 2 * len(self.tag_inputs),
            "shadow_mems": 2 * len(self.mem_conf),
            "flow_sites": flow,
            "downgrade_sites": len(self.sites) - flow,
        }

    # -- coverage-observatory enumeration --------------------------------------------
    def shadow_nets(self) -> List[Tuple[str, str, Signal]]:
        """Every synthesized shadow net as ``(plane, original_path,
        shadow_signal)``, sorted by original path.

        ``plane`` is ``"conf"`` or ``"integ"``; the shadow signal is the
        net whose per-principal bits the coverage observatory watches
        for taint activity.
        """
        out: List[Tuple[str, str, Signal]] = []
        for plane, table in (("conf", self.conf), ("integ", self.integ)):
            for orig in sorted(table, key=lambda s: s.path):
                out.append((plane, orig.path, table[orig]))
        return out

    def shadow_net_paths(self) -> Dict[str, List[str]]:
        """Shadow net hierarchical paths grouped by plane."""
        paths: Dict[str, List[str]] = {"conf": [], "integ": []}
        for plane, _orig, shadow in self.shadow_nets():
            paths[plane].append(shadow.path)
        return paths

    def site_census(self) -> List[Dict[str, str]]:
        """Static enumeration of every synthesized enforcement site.

        One entry per :class:`TagSite` with the nets the coverage
        observatory must see armed (``now``) or latched (``sticky``)
        before the site counts as exercised.
        """
        return [{
            "path": s.path,
            "kind": s.kind,
            "declared": s.declared,
            "now": s.now.path,
            "sticky": s.sticky.path,
        } for s in self.sites]


def _declared_static_or_bottom(sig: Signal, lattice: SecurityLattice) -> Label:
    if isinstance(sig.label, Label):
        return sig.label
    return bottom(lattice)


def _zero(n: int) -> Const:
    return Const(0, n)


# -- constant-folding constructors ------------------------------------------------
# Most tag joins have at least one constant-⊥ operand (literals, reset
# state, statically labelled sources), so folding here keeps the shadow
# plane proportional to the *tainted* logic rather than the whole
# design.  Every fold is an exact bitwise identity — the transform stays
# cycle-accurate against the interpreted oracle.

def _cv(x: Node) -> Optional[int]:
    """The constant value of ``x``, or None when dynamic."""
    return x.value if isinstance(x, Const) else None


def _or2(a: Node, b: Node, n: int) -> Node:
    va, vb = _cv(a), _cv(b)
    if va == 0:
        return b
    if vb == 0:
        return a
    if va is not None and vb is not None:
        return Const(va | vb, n)
    return BinaryOp("or", a, b)


def _and2(a: Node, b: Node, n: int) -> Node:
    va, vb = _cv(a), _cv(b)
    if va == 0 or vb == 0:
        return _zero(n)
    if va is not None and vb is not None:
        return Const(va & vb, n)
    if va == mask_for(n):
        return b
    if vb == mask_for(n):
        return a
    return BinaryOp("and", a, b)


def _not(x: Node, n: int) -> Node:
    v = _cv(x)
    if v is not None:
        return Const(v ^ mask_for(n), n)
    return UnaryOp("not", x)


def _red_or(x: Node) -> Node:
    v = _cv(x)
    if v is not None:
        return Const(1 if v else 0, 1)
    return x.red_or()


def _mux2(sel: Node, t: Node, f: Node) -> Node:
    if t is f:
        return t
    vt, vf = _cv(t), _cv(f)
    if vt is not None and vt == vf:
        return t
    vs = _cv(sel)
    if vs is not None:
        return t if vs else f
    return Mux(sel, t, f)


def _or_all(parts: List[Node], n: int) -> Node:
    acc: Node = _zero(n)
    for p in parts:
        acc = _or2(acc, p, n)
    return acc


class _Synth:
    """Builder for one :func:`synthesize_tags` run."""

    def __init__(self, netlist: Netlist, lattice: SecurityLattice,
                 check_downgrades: bool, precise: bool,
                 track_violations: bool, audit: str = "full"):
        self.nl = netlist
        self.lat = lattice
        self.n = len(lattice.principals)
        self.check_downgrades = check_downgrades
        self.precise = precise
        self.track_violations = track_violations
        self.audit = audit
        self.plan = TagPlan(lattice, precise)
        self.out = out = Netlist(netlist.root)
        out.inputs = list(netlist.inputs)
        out.regs = list(netlist.regs)
        out.comb = list(netlist.comb)
        out.drivers = dict(netlist.drivers)
        out.reg_next = dict(netlist.reg_next)
        out.mems = list(netlist.mems)
        out.mem_writes = {m: list(ws) for m, ws in netlist.mem_writes.items()}
        out.signals = list(netlist.signals)
        #: id(node) -> (conf expr, distrust expr); nodes are a shared DAG so
        #: the shadow logic stays proportional to the original
        self._memo: Dict[int, Tuple[Node, Node]] = {}
        #: downgrade nodes already given a check site (one site per marker)
        self._downgrade_sites: Dict[int, Node] = {}
        #: raw violation sites: (path, kind, declared repr, 1-bit expr)
        self._viol: List[Tuple[str, str, str, Node]] = []

    # -- shadow net creation -----------------------------------------------------
    def _shadow_pair(self, sig: Signal, kind: SignalKind,
                     init: Label = None) -> Tuple[Signal, Signal]:
        ci, di = (0, 0) if init is None else encode_tag(self.lat, init)
        conf = Signal(f"{sig.path}__conf", self.n, kind, owner=None, init=ci)
        integ = Signal(f"{sig.path}__integ", self.n, kind, owner=None, init=di)
        self.plan.conf[sig] = conf
        self.plan.integ[sig] = integ
        return conf, integ

    def _make_shadow_signals(self) -> None:
        """Create every shadow net up front so tag expressions can
        reference each other before their drivers exist."""
        for sig in self.nl.inputs:
            kind = (SignalKind.WIRE
                    if isinstance(sig.label, DependentLabel)
                    else SignalKind.INPUT)
            conf, integ = self._shadow_pair(sig, kind)
            if kind is SignalKind.INPUT:
                self.plan.tag_inputs[sig] = (conf, integ)
        for reg in self.nl.regs:
            self._shadow_pair(
                reg, SignalKind.REG,
                init=_declared_static_or_bottom(reg, self.lat))
        for sig in self.nl.comb:
            self._shadow_pair(sig, SignalKind.WIRE)
        for mem in self.nl.mems:
            init_labels = None
            if mem.cell_labels is not None:
                init_labels = list(mem.cell_labels)
            elif isinstance(mem.label, Label):
                init_labels = [mem.label] * mem.depth
            if init_labels is None:
                ci = di = [0] * mem.depth
            else:
                enc = [encode_tag(self.lat, lb) for lb in init_labels]
                ci = [c for c, _ in enc]
                di = [d for _, d in enc]
            mc = Mem(f"{mem.path}__conf", mem.depth, self.n, owner=None,
                     init=ci)
            mi = Mem(f"{mem.path}__integ", mem.depth, self.n, owner=None,
                     init=di)
            self.plan.mem_conf[mem] = mc
            self.plan.mem_integ[mem] = mi

    # -- declared labels as tag expressions ----------------------------------------
    def _is_decode_label(self, dl: DependentLabel) -> bool:
        """True when ``dl`` is the full-tag-space hardware decode (the
        :func:`repro.ifc.tag_label` shape), which lowers to two slices of
        the selector instead of a 2^(2n)-entry mux chain."""
        full = 1 << (2 * self.n)
        if len(dl.domain) != full or dl.selector.width < 2 * self.n:
            return False
        try:
            return all(dl.resolve(v) == Label.decode(self.lat, v)
                       for v in dl.domain)
        except Exception:
            return False

    def _decode_expr(self, tag_expr: Node) -> Tuple[Node, Node]:
        """(conf, distrust) of an encoded ``Label.encode()`` tag value."""
        n = self.n
        conf = tag_expr.bits(2 * n - 1, n)
        dist = UnaryOp("not", tag_expr.bits(n - 1, 0))
        return conf, dist

    def _labelish_tags(self, labelish, sink: bool,
                       selector_value: Optional[Node] = None
                       ) -> Tuple[Node, Node]:
        """Lower a declared ``Label`` / ``DependentLabel`` to tag nets.

        ``selector_value`` substitutes the dependent selector (used for
        memory sinks, where a register selector must be read at its
        *next* value because the write lands next cycle).  Outside the
        declared domain the mux falls back to the domain join at source
        positions and the domain meet at sinks — both conservative; the
        interpreted oracle raises instead, so differential tests stay
        in-domain.
        """
        if isinstance(labelish, Label):
            c, d = encode_tag(self.lat, labelish)
            return Const(c, self.n), Const(d, self.n)
        assert isinstance(labelish, DependentLabel)
        sel = labelish.selector if selector_value is None else selector_value
        if self._is_decode_label(labelish):
            return self._decode_expr(sel)
        default = (labelish.lower_bound() if sink else labelish.upper_bound())
        dc, dd = encode_tag(self.lat, default)
        conf: Node = Const(dc, self.n)
        dist: Node = Const(dd, self.n)
        for v in reversed(labelish.domain):
            if v > mask_for(sel.width):
                continue  # unreachable selector value
            lbl = labelish.resolve(v)
            c, d = encode_tag(self.lat, lbl)
            hit = BinaryOp("eq", sel, Const(v, sel.width))
            conf = Mux(hit, Const(c, self.n), conf)
            dist = Mux(hit, Const(d, self.n), dist)
        return conf, dist

    # -- tag propagation per node kind ----------------------------------------------
    def tags(self, node: Node) -> Tuple[Node, Node]:
        nid = id(node)
        hit = self._memo.get(nid)
        if hit is not None:
            return hit
        result = self._tags_uncached(node)
        self._memo[nid] = result
        return result

    def _join2(self, a: Tuple[Node, Node],
               b: Tuple[Node, Node]) -> Tuple[Node, Node]:
        n = self.n
        return (_or2(a[0], b[0], n), _or2(a[1], b[1], n))

    def _tags_uncached(self, node: Node) -> Tuple[Node, Node]:
        kind = node.kind
        n = self.n
        if kind == "const":
            return _zero(n), _zero(n)
        if kind == "signal":
            return self.plan.conf[node], self.plan.integ[node]
        if kind == "unary":
            return self.tags(node.a)
        if kind == "slice":
            return self.tags(node.a)
        if kind == "binary":
            ta = self.tags(node.a)
            tb = self.tags(node.b)
            joined = self._join2(ta, tb)
            if not self.precise:
                return joined
            if node.op == "and":
                # a zero operand fully determines the result: its tag alone
                az = node.a.is_zero()
                bz = node.b.is_zero()
                return tuple(
                    _mux2(az, ta[i], _mux2(bz, tb[i], joined[i]))
                    for i in (0, 1))
            if node.op == "or":
                arms = []
                if node.a.width == node.width:
                    arms.append((node.a.red_and(), ta))
                if node.b.width == node.width:
                    arms.append((node.b.red_and(), tb))
                conf, dist = joined
                for full, t in reversed(arms):
                    conf = _mux2(full, t[0], conf)
                    dist = _mux2(full, t[1], dist)
                return conf, dist
            return joined
        if kind == "mux":
            ts = self.tags(node.sel)
            tt = self.tags(node.if_true)
            tf = self.tags(node.if_false)
            if not self.precise:
                return self._join2(ts, self._join2(tt, tf))
            # selector joined with the *taken* branch only
            return tuple(
                _mux2(node.sel,
                      _or2(ts[i], tt[i], n),
                      _or2(ts[i], tf[i], n))
                for i in (0, 1))
        if kind == "concat":
            parts = [self.tags(p) for p in node.parts]
            return (_or_all([p[0] for p in parts], n),
                    _or_all([p[1] for p in parts], n))
        if kind == "memread":
            ta = self.tags(node.addr)
            # out-of-range shadow reads return 0 == bottom, matching the
            # tracker's ``al.join(⊥)`` on out-of-range data reads
            rc = MemRead(self.plan.mem_conf[node.mem], node.addr)
            rd = MemRead(self.plan.mem_integ[node.mem], node.addr)
            return _or2(ta[0], rc, n), _or2(ta[1], rd, n)
        if kind == "downgrade":
            return self._downgrade_tags(node)
        raise AssertionError(f"unknown node kind {kind!r}")

    def _downgrade_tags(self, node) -> Tuple[Node, Node]:
        """Downgrade cell: nonmalleable result tags + blocked check."""
        dc, dd = self.tags(node.a)
        tc, td = self._labelish_tags(node.target, sink=False)
        ac, ad = self._labelish_tags(node.authority, sink=False)
        n = self.n
        if node.kind_ == "declassify":
            # result: target confidentiality, integrity joined
            out = (tc, _or2(dd, td, n))
            # Eq.(1): C(data) ⊆ C(target) ∪ r(I(authority)); the authority's
            # vouch set is the complement of its distrust bits
            bound = _or2(tc, _not(ad, n), n)
            blocked = _red_or(_and2(dc, _not(bound, n), n))
        else:  # endorse
            out = (_or2(dc, tc, n), td)
            # Eq.(1) dual: I(data) ⊑I I(target) ⊔I r(C(authority)); the bound
            # vouch set is target_vouch ∩ authority_conf, and the data fails
            # when it distrusts any principal in that bound
            bound = _and2(_not(td, n), ac, n)
            blocked = _red_or(_and2(bound, dd, n))
        if self.check_downgrades and id(node) not in self._downgrade_sites:
            self._downgrade_sites[id(node)] = blocked
            target_repr = repr(node.target)
            self._viol.append(
                (f"{node.kind_} marker", "downgrade", target_repr, blocked))
        return out

    # -- flow-check sites ------------------------------------------------------------
    def _flow_fail(self, computed: Tuple[Node, Node],
                   declared: Tuple[Node, Node]) -> Node:
        n = self.n
        cfail = _and2(computed[0], _not(declared[0], n), n)
        dfail = _and2(computed[1], _not(declared[1], n), n)
        # both planes are n bits wide: one reduction over the OR of the
        # two excess masks, not one reduction per plane
        return _red_or(_or2(cfail, dfail, n))

    def _declared_sink_site(self, sig: Signal,
                            computed: Tuple[Node, Node]) -> None:
        if not isinstance(sig.label, (Label, DependentLabel)):
            return
        declared = self._labelish_tags(sig.label, sink=True)
        self._viol.append(
            (sig.path, "flow", repr(sig.label),
             self._flow_fail(computed, declared)))

    def _mem_write_site(self, mem: Mem, w: MemWrite,
                        computed: Tuple[Node, Node]) -> None:
        """Declared-label check for one memory write (tracker parity:
        checked only when the write fires and the address is in range)."""
        declared = self._declared_cell_tags(mem, w)
        if declared is None:
            return
        fail = self._flow_fail(computed, declared)
        guards: List[Node] = []
        if w.cond is not None:
            guards.append(w.cond)
        if mem.depth < (1 << w.addr.width):
            guards.append(BinaryOp("lt", w.addr,
                                   Const(mem.depth, w.addr.width + 1)))
        for g in guards:
            fail = _and2(g if g.width == 1 else _red_or(g), fail, 1)
        self._viol.append(
            (f"{mem.path}[write]", "flow", repr(mem.label), fail))

    def _declared_cell_tags(self, mem: Mem,
                            w: MemWrite) -> Optional[Tuple[Node, Node]]:
        if isinstance(mem.label, Label):
            return self._labelish_tags(mem.label, sink=True)
        if isinstance(mem.label, DependentLabel):
            sel = mem.label.selector
            # the write lands next cycle; a register selector updated this
            # cycle must be read at its next value (tracker parity)
            sel_value = self.nl.reg_next.get(sel, None)
            return self._labelish_tags(mem.label, sink=True,
                                       selector_value=sel_value)
        if isinstance(mem.label, CellTagLabel):
            tag_expr = (w.tag if w.tag is not None
                        else MemRead(mem.label.tag_mem, w.addr))
            return self._decode_expr(tag_expr)
        if mem.cell_labels is not None:
            dc: Node = _zero(self.n)
            dd: Node = _zero(self.n)
            for addr in reversed(range(mem.depth)):
                c, d = encode_tag(self.lat, mem.cell_labels[addr])
                hit = BinaryOp("eq", w.addr, Const(addr, w.addr.width))
                dc = Mux(hit, Const(c, self.n), dc)
                dd = Mux(hit, Const(d, self.n), dd)
            return dc, dd
        return None

    # -- assembly ---------------------------------------------------------------------
    def run(self) -> Tuple[Netlist, TagPlan]:
        nl, out, plan = self.nl, self.out, self.plan
        self._make_shadow_signals()

        # dependent-labelled inputs: tags derived combinationally from the
        # live selector, exactly like the tracker's _source_label
        dep_input_nets: List[Signal] = []
        for sig in nl.inputs:
            if isinstance(sig.label, DependentLabel):
                conf, integ = plan.conf[sig], plan.integ[sig]
                ce, de = self._labelish_tags(sig.label, sink=False)
                out.drivers[conf] = ce
                out.drivers[integ] = de
                dep_input_nets.extend((conf, integ))
            else:
                conf, integ = plan.conf[sig], plan.integ[sig]
                out.inputs.extend((conf, integ))

        # combinational shadow drivers, in the original topological order:
        # the shadow of s depends only on shadows of s's dependencies
        shadow_comb: List[Signal] = []
        for sig in nl.comb:
            conf, integ = plan.conf[sig], plan.integ[sig]
            ce, de = self.tags(nl.drivers[sig])
            out.drivers[conf] = ce
            out.drivers[integ] = de
            shadow_comb.extend((conf, integ))

        # shadow registers latch the tag of the next-value expression
        for reg in nl.regs:
            conf, integ = plan.conf[reg], plan.integ[reg]
            out.regs.extend((conf, integ))
            out.signals.extend((conf, integ))
            nxt = nl.reg_next.get(reg)
            if nxt is not None:
                ce, de = self.tags(nxt)
                out.reg_next[conf] = ce
                out.reg_next[integ] = de

        # shadow memories mirror every write with the joined tag of the
        # write's condition, address, and data (tracker: cl ⊔ al ⊔ dl);
        # sharing cond/addr nodes inherits ordering and range semantics
        for mem in nl.mems:
            mc, mi = plan.mem_conf[mem], plan.mem_integ[mem]
            out.mems.extend((mc, mi))
            cw: List[MemWrite] = []
            iw: List[MemWrite] = []
            for w in nl.mem_writes.get(mem, []):
                parts = [self.tags(w.addr), self.tags(w.data)]
                if w.cond is not None:
                    parts.append(self.tags(w.cond))
                ce = _or_all([p[0] for p in parts], self.n)
                de = _or_all([p[1] for p in parts], self.n)
                cw.append(MemWrite(w.cond, w.addr, ce))
                iw.append(MemWrite(w.cond, w.addr, de))
                if self.track_violations:
                    self._mem_write_site(mem, w, (ce, de))
            if cw:
                out.mem_writes[mc] = cw
                out.mem_writes[mi] = iw

        # declared comb and register sinks (tracker checks both per cycle:
        # comb against its freshly computed tag, a register against the
        # tag it currently holds)
        if self.track_violations:
            for sig in nl.comb:
                self._declared_sink_site(
                    sig, (plan.conf[sig], plan.integ[sig]))
            for reg in nl.regs:
                self._declared_sink_site(
                    reg, (plan.conf[reg], plan.integ[reg]))

        # audit logic: cycle counter, then per-site now/sticky/first/count.
        # audit="sticky" keeps the per-site now wire and sticky bit but
        # drops the first-cycle and occurrence counters — about 60 % of
        # the whole tag plane's per-cycle cost on the batched backend is
        # these two registers' update networks, and high-throughput
        # campaigns only need "which sites ever fired"
        full_audit = self.audit == "full"
        viol_nets: List[Signal] = []
        if self.track_violations and self._viol:
            cyc = None
            if full_audit:
                cyc = Signal("__tag.cycle", _CYCLE_W, SignalKind.REG,
                             owner=None)
                out.regs.append(cyc)
                out.signals.append(cyc)
                out.reg_next[cyc] = BinaryOp("add", cyc, Const(1, _CYCLE_W))
                plan.cycle_reg = cyc
            stickies: List[Signal] = []
            for i, (path, kind, declared, expr) in enumerate(self._viol):
                now = Signal(f"__tag.viol{i}", 1, SignalKind.WIRE, owner=None)
                sticky = Signal(f"__tag.viol{i}.sticky", 1, SignalKind.REG,
                                owner=None)
                out.drivers[now] = expr
                # a site whose fail expression folded to constant 0 can
                # never fire; keep its registers (so the TagView API and
                # stats are fold-independent) but skip the update networks
                dead = _cv(expr) == 0
                if not dead:
                    out.reg_next[sticky] = BinaryOp("or", sticky, now)
                out.regs.append(sticky)
                out.signals.append(sticky)
                first = count = None
                if full_audit:
                    first = Signal(f"__tag.viol{i}.first", _CYCLE_W,
                                   SignalKind.REG, owner=None)
                    count = Signal(f"__tag.viol{i}.count", _CYCLE_W,
                                   SignalKind.REG, owner=None)
                    if not dead:
                        out.reg_next[first] = Mux(
                            BinaryOp("and", now, UnaryOp("not", sticky)), cyc,
                            first)
                        out.reg_next[count] = Mux(
                            now, BinaryOp("add", count, Const(1, _CYCLE_W)),
                            count)
                    out.regs.extend((first, count))
                    out.signals.extend((first, count))
                viol_nets.append(now)
                stickies.append(sticky)
                plan.sites.append(
                    TagSite(path, kind, declared, now, sticky, first, count))
            alarm = Signal("__tag.alarm", 1, SignalKind.WIRE, owner=None)
            out.drivers[alarm] = _or_all(list(stickies), 1)
            plan.alarm = alarm
            viol_nets.append(alarm)

        # evaluation order: originals, dependent-input tag nets, shadow
        # nets (original topo order), then the violation nets.  Each block
        # only reads earlier blocks, so this order is already topological;
        # keeping the originals in front preserves the values() layout.
        out.comb = (list(nl.comb) + dep_input_nets + shadow_comb + viol_nets)
        out.signals.extend(dep_input_nets + shadow_comb + viol_nets)
        # the free tag inputs were appended to out.inputs above; register
        # them as signals too so signal_by_path resolves them
        for sig, (conf, integ) in plan.tag_inputs.items():
            out.signals.extend((conf, integ))
        return out, plan


def synthesize_tags(netlist: Netlist, lattice: SecurityLattice,
                    check_downgrades: bool = True,
                    precise: bool = True,
                    track_violations: bool = True,
                    audit: str = "full"
                    ) -> Tuple[Netlist, TagPlan]:
    """Widen ``netlist`` with shadow tag nets and propagation logic.

    Returns a transformed copy (expression nodes are shared; only the
    signal/driver/memory tables are rebuilt, following the fault
    injector's pattern) plus the :class:`TagPlan` describing the shadow
    state.  ``precise=True`` matches the interpreted tracker's
    value-aware rules; ``precise=False`` emits the plain monotone join
    at every cell (output tag = join of input tags, no value
    sensitivity), which is the form the property tests quantify over.

    ``audit="full"`` (default) gives every violation site a sticky bit,
    a first-fire cycle register, and an occurrence counter;
    ``audit="sticky"`` keeps only the sticky bit — the fast-campaign
    configuration, roughly 2.4x cheaper per cycle on the batched backend
    (:class:`SynthViolation` then reports ``first_cycle``/``count`` as
    ``None``).
    """
    if audit not in ("full", "sticky"):
        raise ValueError(f"audit must be 'full' or 'sticky', got {audit!r}")
    return _Synth(netlist, lattice, check_downgrades, precise,
                  track_violations, audit).run()


# -- runtime view ---------------------------------------------------------------

class SynthViolation:
    """One audited violation site that fired during a run."""

    __slots__ = ("site", "first_cycle", "count", "lane")

    def __init__(self, site: TagSite, first_cycle: int, count: int,
                 lane: int = 0):
        self.site = site
        self.first_cycle = first_cycle
        self.count = count
        self.lane = lane

    def as_dict(self) -> dict:
        return {"sink": self.site.path, "kind": self.site.kind,
                "declared": self.site.declared, "first_cycle": self.first_cycle,
                "count": self.count, "lane": self.lane}

    def __repr__(self) -> str:
        return (f"cycle {self.first_cycle}: {self.site.kind} violation at "
                f"{self.site.path} (x{self.count}, lane {self.lane})")


class TagView:
    """Read/drive the synthesized shadow state of one simulator.

    Wraps either a single-lane :class:`~repro.hdl.sim.engine.Simulator`
    or a :class:`~repro.hdl.sim.batched.BatchSimulator` (pass ``lane=``
    to address one lane of the latter).  Mirrors the tracker's query API:
    ``label_of`` / ``mem_label_of`` / ``set_source_label`` /
    ``violations`` / ``ok``.
    """

    def __init__(self, sim, plan: TagPlan):
        self.sim = sim
        self.plan = plan
        self.lattice = plan.lattice
        self._batched = hasattr(sim, "peek_all")
        #: testbench-set labels, reapplied after reset (static labels only;
        #: per-cycle callables belong to the interpreted tracker)
        self.source_labels: Dict[Signal, Label] = {}
        self.reseed()

    # -- lane-aware peek/poke ------------------------------------------------------
    def _peek(self, sig: Signal, lane: int) -> int:
        if self._batched:
            return self.sim.peek(sig, lane)
        if lane != 0:
            raise ValueError("single-lane simulator; lane must be 0")
        return self.sim.peek(sig)

    def _peek_mem(self, mem: Mem, addr: int, lane: int) -> int:
        if self._batched:
            return self.sim.peek_mem(mem, addr, lane)
        if lane != 0:
            raise ValueError("single-lane simulator; lane must be 0")
        return self.sim.peek_mem(mem, addr)

    def _poke(self, sig: Signal, value: int, lane: Optional[int]) -> None:
        if self._batched:
            if lane is None:
                self.sim.poke_all(sig, value)
            else:
                self.sim.poke(sig, lane, value)
        else:
            self.sim.poke(sig, value)

    # -- seeding -----------------------------------------------------------------
    def reseed(self) -> None:
        """Drive every free tag input to its declared (or testbench-set)
        label.  Called at construction and again after ``reset()`` —
        fresh state zeroes the tag inputs, which already means ⊥; only
        inputs declared above ⊥ need re-poking."""
        for sig, (conf, integ) in self.plan.tag_inputs.items():
            label = self.source_labels.get(sig)
            if label is None and isinstance(sig.label, Label):
                label = sig.label
            if label is None:
                continue
            c, d = encode_tag(self.lattice, label)
            self._poke(conf, c, None)
            self._poke(integ, d, None)

    def set_source_label(self, sig, label: Label,
                         lane: Optional[int] = None) -> None:
        """Attach a label to a free input (all lanes unless ``lane``).

        Unlike the interpreted tracker this takes a static
        :class:`Label` only — a per-cycle label is just a per-cycle poke
        of the ``<path>__conf`` / ``<path>__integ`` nets.
        """
        sig = self.sim._resolve(sig)
        pair = self.plan.tag_inputs.get(sig)
        if pair is None:
            raise KeyError(
                f"{sig.path} has no free tag inputs (not an input, or its "
                f"declared label is dependent and therefore hardware-derived)")
        c, d = encode_tag(self.lattice, label)
        self._poke(pair[0], c, lane)
        self._poke(pair[1], d, lane)
        if lane is None:
            self.source_labels[sig] = label

    # -- queries -----------------------------------------------------------------
    def label_of(self, sig, lane: int = 0) -> Label:
        """Current label of any signal, decoded from its shadow nets."""
        sig = self.sim._resolve(sig)
        conf = self.plan.conf.get(sig)
        if conf is None:
            raise KeyError(f"no shadow tag nets for {sig.path}")
        return decode_tag(self.lattice,
                          self._peek(conf, lane),
                          self._peek(self.plan.integ[sig], lane))

    def mem_label_of(self, mem, addr: int, lane: int = 0) -> Label:
        mem = self.sim._resolve_mem(mem)
        mc = self.plan.mem_conf.get(mem)
        if mc is None:
            raise KeyError(f"no shadow tag memories for {mem.path}")
        return decode_tag(self.lattice,
                          self._peek_mem(mc, addr, lane),
                          self._peek_mem(self.plan.mem_integ[mem], addr, lane))

    def any_violation(self, lane: int = 0) -> bool:
        if self.plan.alarm is None:
            return False
        return bool(self._peek(self.plan.alarm, lane))

    def violations(self, lane: int = 0,
                   emit: bool = False) -> List[SynthViolation]:
        """Scan the sticky audit registers; optionally forward each hit
        to the ``repro.obs`` security stream (``source="synth"``)."""
        out: List[SynthViolation] = []
        for site in self.plan.sites:
            if not self._peek(site.sticky, lane):
                continue
            out.append(SynthViolation(
                site,
                self._peek(site.first_cycle, lane)
                if site.first_cycle is not None else None,
                self._peek(site.count, lane)
                if site.count is not None else None,
                lane))
        if emit and out:
            from ..obs import telemetry as _telemetry

            obs = _telemetry()
            if obs is not None:
                for v in out:
                    obs.security.emit(
                        "label_violation", cycle=v.first_cycle,
                        source="synth", sink=v.site.path,
                        site_kind=v.site.kind, declared=v.site.declared,
                        count=v.count, lane=v.lane)
        return out

    def ok(self, lane: int = 0) -> bool:
        return not self.any_violation(lane)

    def summary(self, lane: int = 0) -> str:
        v = self.violations(lane)
        head = (f"synthesized tag tracking of {self.sim.netlist.root.path}: "
                f"{'CLEAN' if not v else 'VIOLATIONS'} "
                f"({len(v)} sites fired, lane {lane})")
        return "\n".join([head] + [f"  {x!r}" for x in v[:20]])
