"""Dynamic information-flow tracking alongside simulation (RTLIFT-style).

The static checker (:mod:`repro.ifc.checker`) proves flow policies for
*all* runs; the :class:`LabelTracker` verifies them on *concrete* runs by
propagating labels through the simulated design cycle by cycle.  It is
the reproduction of the "information-flow tracking logic" alternative
the paper discusses (§2.3, §5 — GLIFT/RTLIFT), and it doubles as a
validation oracle: on the full 30-stage accelerator, where joint static
case enumeration would explode, the tracker confirms at runtime that the
same invariants hold (and that planted vulnerabilities violate them).

Precision matches the checker's partial evaluation: mux nodes take the
label of the *taken* branch (plus the selector), constant-making operands
short-circuit, and downgrade markers apply the nonmalleable rules with
live labels.

With ``provenance=True`` the tracker additionally keeps a cycle-accurate
**provenance ledger**: every state element (register, memory cell) and
every watched/labelled combinational signal records, per cycle, the
immediate parents its label was joined from — the source inputs, the
state it read, and the downgrade markers it crossed.  :meth:`explain`
walks the ledger backwards from any sink to its label sources and
returns a :class:`~repro.ifc.witness.Witness`; every
:class:`TrackViolation` then carries that evidence chain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import Node
from ..hdl.signal import Signal
from .dependent import CellTagLabel, DependentLabel
from .label import Label, bottom, join_all
from .lattice import SecurityLattice
from .witness import Witness, WitnessSource, WitnessStep

#: empty provenance cell: (atom set, downgrade notes)
_PEMPTY: Tuple[frozenset, tuple] = (frozenset(), ())


class TrackViolation:
    """A runtime flow or downgrade violation observed at a specific cycle."""

    def __init__(self, cycle: int, sink: str, computed: str, declared: str,
                 kind: str = "flow", detail: str = "",
                 witness: Optional[Witness] = None):
        self.cycle = cycle
        self.sink = sink
        self.computed = computed
        self.declared = declared
        self.kind = kind
        self.detail = detail
        #: source→sink evidence chain (``None`` unless provenance is on)
        self.witness = witness

    def as_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "sink": self.sink,
            "kind": self.kind,
            "computed": self.computed,
            "declared": self.declared,
            "detail": self.detail,
            "witness": self.witness.as_dict() if self.witness else None,
        }

    def __repr__(self) -> str:
        msg = (f"cycle {self.cycle}: {self.kind} violation at {self.sink}: "
               f"{self.computed} ⋢ {self.declared}")
        if self.detail:
            msg += f" — {self.detail}"
        return msg


class ProvEntry:
    """One ledger node: a state element or watched signal at one cycle."""

    __slots__ = ("path", "kind", "cycle", "label", "parents",
                 "parent_cycle", "via", "source", "declared_site")

    def __init__(self, path: str, kind: str, cycle: int, label: Label,
                 parents: frozenset, parent_cycle: int,
                 via: tuple = (), source: bool = False,
                 declared_site: bool = False):
        self.path = path
        self.kind = kind  # "input" | "reg" | "signal" | "mem"
        self.cycle = cycle
        self.label = label
        #: cycle-less atoms; resolved against ``parent_cycle`` when walking
        self.parents = parents
        self.parent_cycle = parent_cycle
        self.via = via
        self.source = source
        #: a site where the policy (re)introduces a declared label — walks
        #: stop here so static and dynamic source sets are comparable
        self.declared_site = declared_site


class LabelTracker:
    """Track labels through a simulation and check declared sinks."""

    def __init__(self, sim, lattice: SecurityLattice,
                 check_downgrades: bool = True,
                 provenance: bool = False,
                 window: Optional[int] = None):
        self.sim = sim
        self.netlist: Netlist = sim.netlist
        self.lattice = lattice
        self.check_downgrades = check_downgrades
        self.violations: List[TrackViolation] = []
        self._bottom = bottom(lattice)

        #: record per-cycle label parents (costs time+memory; off by default)
        self.provenance = provenance
        #: retain only the last ``window`` cycles of ledger (None = all)
        self.window = window
        #: the queryable flow graph: key -> ProvEntry.  Keys are
        #: ("input"|"reg"|"signal", Signal, cycle) or ("mem", Mem, addr, cycle)
        self.ledger: Dict[tuple, ProvEntry] = {}
        self._ledger_by_cycle: Dict[int, List[tuple]] = {}
        self._watch: Set[Signal] = set()
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None
        # per-cycle provenance memo (id(node) -> (atoms, via)); None = off
        self._patoms: Optional[Dict[int, Tuple[frozenset, tuple]]] = None

        # label state: registers and memory cells
        self.reg_labels: Dict[Signal, Label] = {
            r: self._declared_static_or_bottom(r) for r in self.netlist.regs
        }
        self.mem_labels: Dict[Mem, List[Label]] = {}
        for mem in self.netlist.mems:
            if mem.cell_labels is not None:
                self.mem_labels[mem] = list(mem.cell_labels)
            elif isinstance(mem.label, Label):
                self.mem_labels[mem] = [mem.label] * mem.depth
            else:
                self.mem_labels[mem] = [self._bottom] * mem.depth

        # testbench-provided labels for free inputs (may be per-cycle fns)
        self.source_labels: Dict[Signal, Union[Label, Callable[[], Label]]] = {}

        sim.add_watcher(self._on_cycle)

    # -- configuration -----------------------------------------------------------
    def _declared_static_or_bottom(self, sig: Signal) -> Label:
        if isinstance(sig.label, Label):
            return sig.label
        return self._bottom

    def set_source_label(self, sig, label: Union[Label, Callable[[], Label]]):
        """Attach a (possibly per-cycle) label to a free input."""
        sig = self.sim._resolve(sig)
        self.source_labels[sig] = label

    def watch(self, sig) -> Signal:
        """Record per-cycle provenance for a combinational signal.

        Registers, inputs and declared-label sinks are always in the
        ledger; unlabelled combinational wires must be watched explicitly
        before :meth:`explain` can answer for them.
        """
        sig = self.sim._resolve(sig)
        self._watch.add(sig)
        return sig

    def label_of(self, sig) -> Label:
        """Current tracked label of a register (or last computed comb label)."""
        sig = self.sim._resolve(sig)
        if sig in self.reg_labels:
            return self.reg_labels[sig]
        if hasattr(self, "_last_env") and sig in self._last_env:
            return self._last_env[sig][1]
        raise KeyError(f"no tracked label for {sig.path} yet")

    def label_at(self, sig) -> Optional[Label]:
        """Label of any signal as of the last processed cycle (or None).

        Unlike :meth:`label_of` this covers inputs and registers *at the
        cycle the watchers last ran*, which is what a waveform overlay
        wants (:class:`repro.hdl.sim.trace.Trace`).
        """
        sig = self.sim._resolve(sig)
        env = getattr(self, "_last_full_env", None)
        if env is None:
            return None
        hit = env.get(id(sig))
        return hit[1] if hit is not None else None

    def mem_label_of(self, mem, addr: int) -> Label:
        mem = self.sim._resolve_mem(mem)
        return self.mem_labels[mem][addr]

    def set_mem_label(self, mem, addr: int, label: Label) -> None:
        mem = self.sim._resolve_mem(mem)
        self.mem_labels[mem][addr] = label

    def _record(self, violation: TrackViolation) -> None:
        self.violations.append(violation)
        from ..obs import telemetry as _telemetry

        obs = _telemetry()
        if obs is not None:
            detail = dict(
                sink=violation.sink, computed=violation.computed,
                declared=violation.declared)
            if violation.witness is not None:
                detail["witness_sources"] = sorted(
                    violation.witness.source_set())
                detail["witness"] = violation.witness.render()
            obs.security.emit(
                "label_violation", cycle=violation.cycle, source="tracker",
                **detail)

    # -- per-cycle propagation ------------------------------------------------------
    def _source_label(self, sig: Signal, env) -> Label:
        if sig in self.source_labels:
            src = self.source_labels[sig]
            return src() if callable(src) else src
        if isinstance(sig.label, Label):
            return sig.label
        if isinstance(sig.label, DependentLabel):
            sel_value = self._value_of(sig.label.selector, env)
            return sig.label.resolve(sel_value)
        return self._bottom

    def _value_of(self, node: Node, env) -> int:
        return self._eval(node, env)[0]

    def _eval(self, node: Node, env: Dict) -> Tuple[int, Label]:
        """(value, label) of a node; ``env`` memoises per cycle."""
        nid = id(node)
        hit = env.get(nid)
        if hit is not None:
            return hit
        result = self._eval_uncached(node, env)
        env[nid] = result
        return result

    def _eval_uncached(self, node: Node, env: Dict) -> Tuple[int, Label]:
        kind = node.kind
        pa = self._patoms
        if kind == "const":
            return node.value, self._bottom
        if kind == "signal":
            # signals are pre-seeded into env by _on_cycle
            raise AssertionError(f"unseeded signal {node.path}")
        if kind == "unary":
            av, al = self._eval(node.a, env)
            if pa is not None:
                pa[id(node)] = pa.get(id(node.a), _PEMPTY)
            return node.eval_op([av]), al
        if kind == "binary":
            av, al = self._eval(node.a, env)
            bv, bl = self._eval(node.b, env)
            if node.op == "and":
                if av == 0:
                    if pa is not None:
                        pa[id(node)] = pa.get(id(node.a), _PEMPTY)
                    return 0, al
                if bv == 0:
                    if pa is not None:
                        pa[id(node)] = pa.get(id(node.b), _PEMPTY)
                    return 0, bl
            if node.op == "or":
                full = (1 << node.width) - 1
                if av == full and node.a.width == node.width:
                    if pa is not None:
                        pa[id(node)] = pa.get(id(node.a), _PEMPTY)
                    return full, al
                if bv == full and node.b.width == node.width:
                    if pa is not None:
                        pa[id(node)] = pa.get(id(node.b), _PEMPTY)
                    return full, bl
            if pa is not None:
                pa[id(node)] = self._pmerge(
                    pa.get(id(node.a), _PEMPTY), pa.get(id(node.b), _PEMPTY))
            return node.eval_op([av, bv]), al.join(bl)
        if kind == "mux":
            sv, sl = self._eval(node.sel, env)
            branch = node.if_true if sv != 0 else node.if_false
            bv, bl = self._eval(branch, env)
            if pa is not None:
                # the selector is the implicit-flow guard of this hop
                pa[id(node)] = self._pmerge(
                    pa.get(id(node.sel), _PEMPTY), pa.get(id(branch), _PEMPTY))
            return bv, sl.join(bl)
        if kind == "slice":
            av, al = self._eval(node.a, env)
            if pa is not None:
                pa[id(node)] = pa.get(id(node.a), _PEMPTY)
            return node.eval_op([av]), al
        if kind == "concat":
            vals, labels = [], []
            for p in node.parts:
                pv, pl = self._eval(p, env)
                vals.append(pv)
                labels.append(pl)
            if pa is not None:
                merged = _PEMPTY
                for p in node.parts:
                    merged = self._pmerge(merged, pa.get(id(p), _PEMPTY))
                pa[id(node)] = merged
            return node.eval_op(vals), join_all(labels, self.lattice)
        if kind == "memread":
            av, al = self._eval(node.addr, env)
            mem = node.mem
            if av < mem.depth:
                value = self.sim.peek_mem(mem, av)
                cell_label = self.mem_labels[mem][av]
                if pa is not None:
                    pa[id(node)] = self._pmerge(
                        pa.get(id(node.addr), _PEMPTY),
                        (frozenset({("mem", mem, av)}), ()))
            else:
                value, cell_label = 0, self._bottom
                if pa is not None:
                    pa[id(node)] = pa.get(id(node.addr), _PEMPTY)
            return value, al.join(cell_label)
        if kind == "downgrade":
            return self._eval_downgrade(node, env)
        raise AssertionError(kind)

    @staticmethod
    def _pmerge(a: Tuple[frozenset, tuple],
                b: Tuple[frozenset, tuple]) -> Tuple[frozenset, tuple]:
        if not b[0] and not b[1]:
            return a
        if not a[0] and not a[1]:
            return b
        via = a[1]
        for v in b[1]:
            if v not in via:
                via = via + (v,)
        return a[0] | b[0], via

    def _eval_downgrade(self, node, env) -> Tuple[int, Label]:
        from .nonmalleable import check_downgrade, downgraded_label

        av, al = self._eval(node.a, env)
        target = self._resolve_labelish(node.target, env)
        authority = self._resolve_labelish(node.authority, env)
        if self._patoms is not None:
            atoms, via = self._patoms.get(id(node.a), _PEMPTY)
            note = f"{node.kind_}->{target!r}"
            if note not in via:
                via = via + (note,)
            self._patoms[id(node)] = (atoms, via)
        if self.check_downgrades:
            msg = check_downgrade(node.kind_, al, target, authority)
            if msg is not None:
                witness = None
                if self._patoms is not None:
                    atoms, via = self._patoms.get(id(node.a), _PEMPTY)
                    witness = self._witness_from_atoms(
                        f"{node.kind_} marker", atoms, via,
                        self.sim.cycle, al, target)
                self._record(
                    TrackViolation(
                        cycle=self.sim.cycle,
                        sink=f"{node.kind_} marker",
                        computed=repr(al),
                        declared=repr(target),
                        kind="downgrade",
                        detail=msg,
                        witness=witness,
                    )
                )
        return av, downgraded_label(node.kind_, al, target)

    def _resolve_labelish(self, label, env) -> Label:
        if isinstance(label, DependentLabel):
            return label.resolve(self._value_of(label.selector, env))
        return label

    def _declared_cell_label(self, mem: Mem, addr: int, env,
                             write_tag=None) -> Optional[Label]:
        """Declared label of the cell a write is landing in (if any)."""
        if isinstance(mem.label, Label):
            return mem.label
        if isinstance(mem.label, DependentLabel):
            sel = mem.label.selector
            # the write lands next cycle; use the selector's next value when
            # the selector is a register updated in this same cycle
            if sel in self.netlist.reg_next:
                sel_value = self._value_of(self.netlist.reg_next[sel], env)
            else:
                sel_value = self._value_of(sel, env)
            return mem.label.resolve(sel_value)
        if isinstance(mem.label, CellTagLabel):
            if write_tag is not None:
                return mem.label.resolve(self._value_of(write_tag, env))
            tag_value = self.sim.peek_mem(mem.label.tag_mem, addr)
            return mem.label.resolve(tag_value)
        if mem.cell_labels is not None:
            return mem.cell_labels[addr]
        return None

    def _declared_now(self, sig: Signal, env) -> Optional[Label]:
        if isinstance(sig.label, Label):
            return sig.label
        if isinstance(sig.label, DependentLabel):
            return sig.label.resolve(self._value_of(sig.label.selector, env))
        return None

    # -- provenance ledger -----------------------------------------------------
    def _ledger_put(self, key: tuple, entry: ProvEntry) -> None:
        self.ledger[key] = entry
        self._ledger_by_cycle.setdefault(entry.cycle, []).append(key)

    def _seed_initial_state(self, cycle: int) -> None:
        """Initial registers and memory cells are label *sources*."""
        for reg in self.netlist.regs:
            self._ledger_put(
                ("reg", reg, cycle),
                ProvEntry(reg.path, "reg", cycle, self.reg_labels[reg],
                          frozenset(), cycle, source=True))
        for mem, labels in self.mem_labels.items():
            declared = self._mem_is_declared(mem)
            for addr, label in enumerate(labels):
                self._ledger_put(
                    ("mem", mem, addr, cycle),
                    ProvEntry(f"{mem.path}[{addr}]", "mem", cycle, label,
                              frozenset(), cycle, source=True,
                              declared_site=declared))

    def _prune_ledger(self, now: int) -> None:
        if self.window is None:
            return
        horizon = now - self.window
        for cyc in [c for c in self._ledger_by_cycle if c < horizon]:
            for key in self._ledger_by_cycle.pop(cyc):
                self.ledger.pop(key, None)

    def _atom_entry(self, atom: tuple, cycle: int) -> Optional[ProvEntry]:
        """Latest ledger entry for a cycle-less atom at or before ``cycle``."""
        first = self._first_cycle if self._first_cycle is not None else cycle
        if atom[0] == "mem":
            _, mem, addr = atom
            c = cycle
            while c >= first:
                e = self.ledger.get(("mem", mem, addr, c))
                if e is not None:
                    return e
                c -= 1
            return None
        kind, sig = atom
        c = cycle
        while c >= first:
            e = self.ledger.get((kind, sig, c))
            if e is not None:
                return e
            c -= 1
        return None

    def _is_stop_entry(self, entry: ProvEntry, start: ProvEntry) -> bool:
        if entry.source or entry.kind == "input":
            return True
        return entry.declared_site and entry is not start

    def _mem_is_declared(self, mem: Mem) -> bool:
        return mem.label is not None or mem.cell_labels is not None

    def _collect_sources(self, start: ProvEntry,
                         declared: Optional[Label]) -> List[WitnessSource]:
        """All source sites reaching ``start`` (BFS over the ledger).

        The walk stops at *declared* sites — free inputs, initial state,
        and cells of memories that carry a declared label — because those
        are where the policy introduces labels; that is also where the
        static blame walk stops, which is what makes the two source sets
        comparable.
        """
        seen: Set[int] = {id(start)}
        frontier = [start]
        out: Dict[str, WitnessSource] = {}
        while frontier:
            entry = frontier.pop()
            if self._is_stop_entry(entry, start):
                if entry.label != self._bottom or declared is None:
                    offending = (not entry.label.flows_to(declared)
                                 if declared is not None
                                 else entry.label != self._bottom)
                    key = f"{entry.path}@{entry.cycle}"
                    if key not in out:
                        out[key] = WitnessSource(
                            entry.path, entry.kind, entry.cycle,
                            repr(entry.label), offending)
                continue
            for atom in entry.parents:
                p = self._atom_entry(atom, entry.parent_cycle)
                if p is not None and id(p) not in seen:
                    seen.add(id(p))
                    frontier.append(p)
        return sorted(out.values(), key=lambda s: (s.path, s.cycle or 0))

    def _walk_chain(self, start: ProvEntry,
                    declared: Optional[Label]) -> List[WitnessStep]:
        """One greedy source→sink path, preferring offending parents."""
        steps: List[WitnessStep] = []
        seen: Set[int] = {id(start)}
        cur = start
        for _ in range(100000):
            steps.append(WitnessStep(
                cur.path, cur.kind, cur.cycle, repr(cur.label), cur.via))
            if self._is_stop_entry(cur, start) or not cur.parents:
                break
            parents = []
            for atom in cur.parents:
                p = self._atom_entry(atom, cur.parent_cycle)
                if p is not None and id(p) not in seen:
                    parents.append(p)
            if not parents:
                break
            parents.sort(key=lambda p: (p.path, p.cycle))
            pick = None
            if declared is not None:
                for p in parents:
                    if not p.label.flows_to(declared):
                        pick = p
                        break
            if pick is None:
                for p in parents:
                    if p.label != self._bottom:
                        pick = p
                        break
            if pick is None:
                pick = parents[0]
            seen.add(id(pick))
            cur = pick
        steps.reverse()
        return steps

    def _witness_from_entry(self, entry: ProvEntry,
                            declared: Optional[Label]) -> Witness:
        return Witness(
            sink=entry.path, mode="dynamic",
            steps=self._walk_chain(entry, declared),
            sources=self._collect_sources(entry, declared))

    def _witness_from_atoms(self, sink: str, atoms: frozenset, via: tuple,
                            cycle: int, label: Label,
                            declared: Optional[Label]) -> Witness:
        """Witness for a transient expression (a failing downgrade, a
        blocked write) that has no ledger entry of its own."""
        entry = ProvEntry(sink, "signal", cycle, label, atoms, cycle, via)
        return self._witness_from_entry(entry, declared)

    def explain(self, sig, cycle: Optional[int] = None,
                declared: Optional[Label] = None) -> Witness:
        """Source→sink witness chain for ``sig`` at ``cycle``.

        Requires ``provenance=True``.  ``declared`` (when given) steers
        the walk towards parents whose label does *not* flow to it and
        marks those sources offending; without it, any non-⊥ source is
        reported as a label origin.
        """
        if not self.provenance:
            raise RuntimeError(
                "provenance ledger is off; construct "
                "LabelTracker(..., provenance=True)")
        sig = self.sim._resolve(sig)
        if cycle is None:
            cycle = self._last_cycle
        if cycle is None:
            raise KeyError("no cycles tracked yet")
        nl = self.netlist
        if sig in nl.reg_next or sig in self.reg_labels:
            atom = ("reg", sig)
        elif sig in nl.drivers:
            atom = ("signal", sig)
        else:
            atom = ("input", sig)
        entry = self._atom_entry(atom, cycle)
        if entry is None:
            raise KeyError(
                f"no provenance recorded for {sig.path} at cycle {cycle}; "
                f"unlabelled combinational signals must be registered with "
                f"tracker.watch(sig) before the cycle runs")
        return self._witness_from_entry(entry, declared)

    def explain_mem(self, mem, addr: int, cycle: Optional[int] = None,
                    declared: Optional[Label] = None) -> Witness:
        """Witness chain for one memory cell (e.g. a protected key cell)."""
        if not self.provenance:
            raise RuntimeError(
                "provenance ledger is off; construct "
                "LabelTracker(..., provenance=True)")
        mem = self.sim._resolve_mem(mem)
        if cycle is None:
            cycle = self._last_cycle
        if cycle is None:
            raise KeyError("no cycles tracked yet")
        entry = self._atom_entry(("mem", mem, addr), cycle)
        if entry is None:
            raise KeyError(f"no provenance for {mem.path}[{addr}] @ {cycle}")
        return self._witness_from_entry(entry, declared)

    def _on_cycle(self, sim) -> None:
        nl = self.netlist
        env: Dict = {}
        prov = self.provenance
        if prov:
            self._patoms = {}
            if self._first_cycle is None:
                self._first_cycle = sim.cycle
                self._seed_initial_state(sim.cycle)
            self._last_cycle = sim.cycle
        pa = self._patoms

        # seed state: inputs and registers (values first so that dependent
        # input labels can resolve selectors that are themselves inputs)
        for sig in nl.inputs:
            env[id(sig)] = (sim.peek(sig), self._bottom)
        for reg in nl.regs:
            env[id(reg)] = (sim.peek(reg), self.reg_labels[reg])
            if pa is not None:
                pa[id(reg)] = (frozenset({("reg", reg)}), ())
        for sig in nl.inputs:
            value = env[id(sig)][0]
            label = self._source_label(sig, env)
            env[id(sig)] = (value, label)
            if pa is not None:
                pa[id(sig)] = (frozenset({("input", sig)}), ())
                self._ledger_put(
                    ("input", sig, sim.cycle),
                    ProvEntry(sig.path, "input", sim.cycle, label,
                              frozenset(), sim.cycle, source=True))

        # combinational labels in dependency order
        comb_results: Dict[Signal, Tuple[int, Label]] = {}
        for sig in nl.comb:
            value, label = self._eval(nl.drivers[sig], env)
            env[id(sig)] = (value, label)
            comb_results[sig] = (value, label)
            if pa is not None:
                cell = pa.get(id(nl.drivers[sig]), _PEMPTY)
                pa[id(sig)] = cell
                if sig.label is not None or sig in self._watch:
                    self._ledger_put(
                        ("signal", sig, sim.cycle),
                        ProvEntry(sig.path, "signal", sim.cycle, label,
                                  cell[0], sim.cycle, cell[1]))

        self._last_env = comb_results
        self._last_full_env = env

        # check declared sinks (comb and regs)
        for sig in nl.comb:
            declared = self._declared_now(sig, env)
            if declared is None:
                continue
            computed = comb_results[sig][1]
            if not computed.flows_to(declared):
                witness = None
                if pa is not None:
                    entry = self.ledger.get(("signal", sig, sim.cycle))
                    if entry is not None:
                        witness = self._witness_from_entry(entry, declared)
                self._record(
                    TrackViolation(
                        cycle=sim.cycle,
                        sink=sig.path,
                        computed=repr(computed),
                        declared=repr(declared),
                        witness=witness,
                    )
                )
        for reg in nl.regs:
            declared = self._declared_now(reg, env)
            if declared is None:
                continue
            current = self.reg_labels[reg]
            if not current.flows_to(declared):
                witness = None
                if pa is not None:
                    entry = self._atom_entry(("reg", reg), sim.cycle)
                    if entry is not None:
                        witness = self._witness_from_entry(entry, declared)
                self._record(
                    TrackViolation(
                        cycle=sim.cycle,
                        sink=reg.path,
                        computed=repr(current),
                        declared=repr(declared),
                        witness=witness,
                    )
                )

        # commit: next register labels and memory-cell labels
        next_labels: Dict[Signal, Label] = {}
        for reg, nxt in nl.reg_next.items():
            next_labels[reg] = self._eval(nxt, env)[1]
            if pa is not None:
                cell = pa.get(id(nxt), _PEMPTY)
                self._ledger_put(
                    ("reg", reg, sim.cycle + 1),
                    ProvEntry(reg.path, "reg", sim.cycle + 1,
                              next_labels[reg], cell[0], sim.cycle, cell[1]))

        pending: List[Tuple[Mem, int, Label]] = []
        for mem, writes in nl.mem_writes.items():
            for w in writes:
                if w.cond is not None:
                    cv, cl = self._eval(w.cond, env)
                    if cv == 0:
                        continue
                else:
                    cl = self._bottom
                av, al = self._eval(w.addr, env)
                dv, dl = self._eval(w.data, env)
                if av < mem.depth:
                    computed = cl.join(al).join(dl)
                    declared = self._declared_cell_label(mem, av, env, w.tag)
                    cell = _PEMPTY
                    if pa is not None:
                        cell = self._pmerge(
                            pa.get(id(w.addr), _PEMPTY),
                            pa.get(id(w.data), _PEMPTY))
                        if w.cond is not None:
                            cell = self._pmerge(
                                cell, pa.get(id(w.cond), _PEMPTY))
                        self._ledger_put(
                            ("mem", mem, av, sim.cycle + 1),
                            ProvEntry(f"{mem.path}[{av}]", "mem",
                                      sim.cycle + 1, computed, cell[0],
                                      sim.cycle, cell[1],
                                      declared_site=self._mem_is_declared(mem)))
                    if declared is not None and not computed.flows_to(declared):
                        witness = None
                        if pa is not None:
                            witness = self._witness_from_atoms(
                                f"{mem.path}[{av}]", cell[0], cell[1],
                                sim.cycle, computed, declared)
                        self._record(
                            TrackViolation(
                                cycle=sim.cycle,
                                sink=f"{mem.path}[{av}]",
                                computed=repr(computed),
                                declared=repr(declared),
                                witness=witness,
                            )
                        )
                    pending.append((mem, av, computed))
        for mem, addr, label in pending:
            self.mem_labels[mem][addr] = label
        self.reg_labels = next_labels
        if prov:
            self._patoms = None
            self._prune_ledger(sim.cycle)

    # -- reporting -------------------------------------------------------------
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"dynamic IFC tracking of {self.netlist.root.path}: "
            f"{'CLEAN' if self.ok() else 'VIOLATIONS'} "
            f"({len(self.violations)} violations over {self.sim.cycle} cycles)"
        ]
        lines.extend(f"  {v!r}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)
