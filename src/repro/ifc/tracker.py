"""Dynamic information-flow tracking alongside simulation (RTLIFT-style).

The static checker (:mod:`repro.ifc.checker`) proves flow policies for
*all* runs; the :class:`LabelTracker` verifies them on *concrete* runs by
propagating labels through the simulated design cycle by cycle.  It is
the reproduction of the "information-flow tracking logic" alternative
the paper discusses (§2.3, §5 — GLIFT/RTLIFT), and it doubles as a
validation oracle: on the full 30-stage accelerator, where joint static
case enumeration would explode, the tracker confirms at runtime that the
same invariants hold (and that planted vulnerabilities violate them).

Precision matches the checker's partial evaluation: mux nodes take the
label of the *taken* branch (plus the selector), constant-making operands
short-circuit, and downgrade markers apply the nonmalleable rules with
live labels.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import Node
from ..hdl.signal import Signal
from .dependent import CellTagLabel, DependentLabel
from .label import Label, bottom, join_all
from .lattice import SecurityLattice


class TrackViolation:
    """A runtime flow or downgrade violation observed at a specific cycle."""

    def __init__(self, cycle: int, sink: str, computed: str, declared: str,
                 kind: str = "flow", detail: str = ""):
        self.cycle = cycle
        self.sink = sink
        self.computed = computed
        self.declared = declared
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        msg = (f"cycle {self.cycle}: {self.kind} violation at {self.sink}: "
               f"{self.computed} ⋢ {self.declared}")
        if self.detail:
            msg += f" — {self.detail}"
        return msg


class LabelTracker:
    """Track labels through a simulation and check declared sinks."""

    def __init__(self, sim, lattice: SecurityLattice,
                 check_downgrades: bool = True):
        self.sim = sim
        self.netlist: Netlist = sim.netlist
        self.lattice = lattice
        self.check_downgrades = check_downgrades
        self.violations: List[TrackViolation] = []
        self._bottom = bottom(lattice)

        # label state: registers and memory cells
        self.reg_labels: Dict[Signal, Label] = {
            r: self._declared_static_or_bottom(r) for r in self.netlist.regs
        }
        self.mem_labels: Dict[Mem, List[Label]] = {}
        for mem in self.netlist.mems:
            if mem.cell_labels is not None:
                self.mem_labels[mem] = list(mem.cell_labels)
            elif isinstance(mem.label, Label):
                self.mem_labels[mem] = [mem.label] * mem.depth
            else:
                self.mem_labels[mem] = [self._bottom] * mem.depth

        # testbench-provided labels for free inputs (may be per-cycle fns)
        self.source_labels: Dict[Signal, Union[Label, Callable[[], Label]]] = {}

        sim.add_watcher(self._on_cycle)

    # -- configuration -----------------------------------------------------------
    def _declared_static_or_bottom(self, sig: Signal) -> Label:
        if isinstance(sig.label, Label):
            return sig.label
        return self._bottom

    def set_source_label(self, sig, label: Union[Label, Callable[[], Label]]):
        """Attach a (possibly per-cycle) label to a free input."""
        sig = self.sim._resolve(sig)
        self.source_labels[sig] = label

    def label_of(self, sig) -> Label:
        """Current tracked label of a register (or last computed comb label)."""
        sig = self.sim._resolve(sig)
        if sig in self.reg_labels:
            return self.reg_labels[sig]
        if hasattr(self, "_last_env") and sig in self._last_env:
            return self._last_env[sig][1]
        raise KeyError(f"no tracked label for {sig.path} yet")

    def mem_label_of(self, mem, addr: int) -> Label:
        mem = self.sim._resolve_mem(mem)
        return self.mem_labels[mem][addr]

    def set_mem_label(self, mem, addr: int, label: Label) -> None:
        mem = self.sim._resolve_mem(mem)
        self.mem_labels[mem][addr] = label

    def _record(self, violation: TrackViolation) -> None:
        self.violations.append(violation)
        from ..obs import telemetry as _telemetry

        obs = _telemetry()
        if obs is not None:
            obs.security.emit(
                "label_violation", cycle=violation.cycle, source="tracker",
                sink=violation.sink, computed=violation.computed,
                declared=violation.declared)

    # -- per-cycle propagation ------------------------------------------------------
    def _source_label(self, sig: Signal, env) -> Label:
        if sig in self.source_labels:
            src = self.source_labels[sig]
            return src() if callable(src) else src
        if isinstance(sig.label, Label):
            return sig.label
        if isinstance(sig.label, DependentLabel):
            sel_value = self._value_of(sig.label.selector, env)
            return sig.label.resolve(sel_value)
        return self._bottom

    def _value_of(self, node: Node, env) -> int:
        return self._eval(node, env)[0]

    def _eval(self, node: Node, env: Dict) -> Tuple[int, Label]:
        """(value, label) of a node; ``env`` memoises per cycle."""
        nid = id(node)
        hit = env.get(nid)
        if hit is not None:
            return hit
        result = self._eval_uncached(node, env)
        env[nid] = result
        return result

    def _eval_uncached(self, node: Node, env: Dict) -> Tuple[int, Label]:
        kind = node.kind
        if kind == "const":
            return node.value, self._bottom
        if kind == "signal":
            # signals are pre-seeded into env by _on_cycle
            raise AssertionError(f"unseeded signal {node.path}")
        if kind == "unary":
            av, al = self._eval(node.a, env)
            return node.eval_op([av]), al
        if kind == "binary":
            av, al = self._eval(node.a, env)
            bv, bl = self._eval(node.b, env)
            if node.op == "and":
                if av == 0:
                    return 0, al
                if bv == 0:
                    return 0, bl
            if node.op == "or":
                full = (1 << node.width) - 1
                if av == full and node.a.width == node.width:
                    return full, al
                if bv == full and node.b.width == node.width:
                    return full, bl
            return node.eval_op([av, bv]), al.join(bl)
        if kind == "mux":
            sv, sl = self._eval(node.sel, env)
            branch = node.if_true if sv != 0 else node.if_false
            bv, bl = self._eval(branch, env)
            return bv, sl.join(bl)
        if kind == "slice":
            av, al = self._eval(node.a, env)
            return node.eval_op([av]), al
        if kind == "concat":
            vals, labels = [], []
            for p in node.parts:
                pv, pl = self._eval(p, env)
                vals.append(pv)
                labels.append(pl)
            return node.eval_op(vals), join_all(labels, self.lattice)
        if kind == "memread":
            av, al = self._eval(node.addr, env)
            mem = node.mem
            if av < mem.depth:
                value = self.sim.peek_mem(mem, av)
                cell_label = self.mem_labels[mem][av]
            else:
                value, cell_label = 0, self._bottom
            return value, al.join(cell_label)
        if kind == "downgrade":
            return self._eval_downgrade(node, env)
        raise AssertionError(kind)

    def _eval_downgrade(self, node, env) -> Tuple[int, Label]:
        from .nonmalleable import check_downgrade, downgraded_label

        av, al = self._eval(node.a, env)
        target = self._resolve_labelish(node.target, env)
        authority = self._resolve_labelish(node.authority, env)
        if self.check_downgrades:
            msg = check_downgrade(node.kind_, al, target, authority)
            if msg is not None:
                self._record(
                    TrackViolation(
                        cycle=self.sim.cycle,
                        sink=f"{node.kind_} marker",
                        computed=repr(al),
                        declared=repr(target),
                        kind="downgrade",
                        detail=msg,
                    )
                )
        return av, downgraded_label(node.kind_, al, target)

    def _resolve_labelish(self, label, env) -> Label:
        if isinstance(label, DependentLabel):
            return label.resolve(self._value_of(label.selector, env))
        return label

    def _declared_cell_label(self, mem: Mem, addr: int, env,
                             write_tag=None) -> Optional[Label]:
        """Declared label of the cell a write is landing in (if any)."""
        if isinstance(mem.label, Label):
            return mem.label
        if isinstance(mem.label, DependentLabel):
            sel = mem.label.selector
            # the write lands next cycle; use the selector's next value when
            # the selector is a register updated in this same cycle
            if sel in self.netlist.reg_next:
                sel_value = self._value_of(self.netlist.reg_next[sel], env)
            else:
                sel_value = self._value_of(sel, env)
            return mem.label.resolve(sel_value)
        if isinstance(mem.label, CellTagLabel):
            if write_tag is not None:
                return mem.label.resolve(self._value_of(write_tag, env))
            tag_value = self.sim.peek_mem(mem.label.tag_mem, addr)
            return mem.label.resolve(tag_value)
        if mem.cell_labels is not None:
            return mem.cell_labels[addr]
        return None

    def _declared_now(self, sig: Signal, env) -> Optional[Label]:
        if isinstance(sig.label, Label):
            return sig.label
        if isinstance(sig.label, DependentLabel):
            return sig.label.resolve(self._value_of(sig.label.selector, env))
        return None

    def _on_cycle(self, sim) -> None:
        nl = self.netlist
        env: Dict = {}

        # seed state: inputs and registers (values first so that dependent
        # input labels can resolve selectors that are themselves inputs)
        for sig in nl.inputs:
            env[id(sig)] = (sim.peek(sig), self._bottom)
        for reg in nl.regs:
            env[id(reg)] = (sim.peek(reg), self.reg_labels[reg])
        for sig in nl.inputs:
            value = env[id(sig)][0]
            env[id(sig)] = (value, self._source_label(sig, env))

        # combinational labels in dependency order
        comb_results: Dict[Signal, Tuple[int, Label]] = {}
        for sig in nl.comb:
            value, label = self._eval(nl.drivers[sig], env)
            env[id(sig)] = (value, label)
            comb_results[sig] = (value, label)

        self._last_env = comb_results

        # check declared sinks (comb and regs)
        for sig in nl.comb:
            declared = self._declared_now(sig, env)
            if declared is None:
                continue
            computed = comb_results[sig][1]
            if not computed.flows_to(declared):
                self._record(
                    TrackViolation(
                        cycle=sim.cycle,
                        sink=sig.path,
                        computed=repr(computed),
                        declared=repr(declared),
                    )
                )
        for reg in nl.regs:
            declared = self._declared_now(reg, env)
            if declared is None:
                continue
            current = self.reg_labels[reg]
            if not current.flows_to(declared):
                self._record(
                    TrackViolation(
                        cycle=sim.cycle,
                        sink=reg.path,
                        computed=repr(current),
                        declared=repr(declared),
                    )
                )

        # commit: next register labels and memory-cell labels
        next_labels: Dict[Signal, Label] = {}
        for reg, nxt in nl.reg_next.items():
            next_labels[reg] = self._eval(nxt, env)[1]

        pending: List[Tuple[Mem, int, Label]] = []
        for mem, writes in nl.mem_writes.items():
            for w in writes:
                if w.cond is not None:
                    cv, cl = self._eval(w.cond, env)
                    if cv == 0:
                        continue
                else:
                    cl = self._bottom
                av, al = self._eval(w.addr, env)
                dv, dl = self._eval(w.data, env)
                if av < mem.depth:
                    computed = cl.join(al).join(dl)
                    declared = self._declared_cell_label(mem, av, env, w.tag)
                    if declared is not None and not computed.flows_to(declared):
                        self._record(
                            TrackViolation(
                                cycle=sim.cycle,
                                sink=f"{mem.path}[{av}]",
                                computed=repr(computed),
                                declared=repr(declared),
                            )
                        )
                    pending.append((mem, av, computed))
        for mem, addr, label in pending:
            self.mem_labels[mem][addr] = label
        self.reg_labels = next_labels

    # -- reporting -------------------------------------------------------------
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"dynamic IFC tracking of {self.netlist.root.path}: "
            f"{'CLEAN' if self.ok() else 'VIOLATIONS'} "
            f"({len(self.violations)} violations over {self.sim.cycle} cycles)"
        ]
        lines.extend(f"  {v!r}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)
