"""``python -m repro ifc synth`` — shadow-tag transform report and gate.

Three sections, mirroring what the paper's Table 2 does for area:

* **tag-net counts** — :meth:`TagPlan.stats` for a handful of labelled
  designs: how many shadow nets / bits / sites the transform adds.
* **per-backend overhead** — wall-clock cost of ``tag_tracking=True``
  against the plain simulation of the same workload, per backend, plus
  the lane-cycles/s the batched backend sustains with tags on.
* **differential spot-check** — the CI-sized version of the full
  harness in ``tests/ifc/test_synth_differential.py``: the interpreted
  :class:`~repro.ifc.tracker.LabelTracker` (oracle) and the synthesized
  tags must agree on every combinational and register label, every
  cycle, on every backend checked.

Exit codes: 0 clean, 1 when the spot-check finds a divergence, 2 on a
usage error.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

#: workload length per backend for the overhead measurement
OVERHEAD_CYCLES = 400
#: spot-check length (cycle-exact label comparison against the oracle)
CHECK_CYCLES = 60
BATCH_LANES = 16


def _stats_designs():
    """Flat labelled designs the transform is synthesized over for the
    tag-net count table (no simulation — just the netlist rewrite)."""
    from ..accel.declassifier import Declassifier
    from ..accel.mini import MiniTaggedPipeline
    from ..accel.scratchpad import KeyScratchpad
    from ..accel.stall import StallController

    return {
        "mini-guarded": lambda: MiniTaggedPipeline(3, guarded=True),
        "mini-unguarded": lambda: MiniTaggedPipeline(3, guarded=False),
        "stall": lambda: StallController(30, protected=True),
        "scratchpad": lambda: KeyScratchpad(protected=True),
        "declassifier": lambda: Declassifier(protected=True),
    }


def _mini_frames(cycles: int) -> List[Dict[str, int]]:
    """Deterministic in-domain stimulus for ``MiniTaggedPipeline(3)``.

    Every dependent-label selector (``in_tag``, ``rd_tag``) stays inside
    its declared domain — the interpreted oracle raises outside it."""
    from ..accel.common import user_label
    from ..accel.mini import BUBBLE_TAG

    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    frames = []
    for t in range(cycles):
        valid = 0 if t % 7 == 6 else 1
        tag = alice if (t % 3) != 2 else eve
        frames.append({
            "mini.in_valid": valid,
            "mini.in_tag": tag if valid else BUBBLE_TAG,
            "mini.in_data": (0x3A + 5 * t) & 0xFF,
            "mini.rd_tag": eve if t % 2 else alice,
            "mini.stall_req": 1 if t % 5 == 0 else 0,
        })
    return frames


def _drive(sim, frames, batched: bool) -> float:
    t0 = time.perf_counter()
    for frame in frames:
        for path, value in frame.items():
            if batched:
                sim.poke_all(path, value)
            else:
                sim.poke(path, value)
        sim.step(1)
    return time.perf_counter() - t0


def _overhead(backend: str, frames) -> Dict[str, float]:
    """Tagged-vs-plain wall time for the mini workload on one backend."""
    from ..accel.common import LATTICE
    from ..accel.mini import MiniTaggedPipeline

    def build(tagged: bool):
        kwargs = dict(tag_tracking=True, lattice=LATTICE) if tagged else {}
        if backend == "batched":
            from ..hdl.sim.batched import BatchSimulator

            return BatchSimulator(MiniTaggedPipeline(3, guarded=True),
                                  lanes=BATCH_LANES, **kwargs)
        from ..hdl.sim import Simulator

        return Simulator(MiniTaggedPipeline(3, guarded=True),
                         backend=backend, **kwargs)

    batched = backend == "batched"
    lanes = BATCH_LANES if batched else 1
    plain = _drive(build(False), frames, batched)
    tagged = _drive(build(True), frames, batched)
    n = len(frames)
    return {
        "backend": backend,
        "cycles": n,
        "lanes": lanes,
        "plain_s": round(plain, 4),
        "tagged_s": round(tagged, 4),
        "overhead_x": round(tagged / plain, 2) if plain > 0 else float("inf"),
        "tagged_lane_cycles_per_s": round(n * lanes / tagged, 1)
        if tagged > 0 else float("inf"),
    }


def _spot_check(backend: str, cycles: int) -> Dict[str, object]:
    """Oracle-vs-synthesized label agreement on the mini pipeline."""
    from ..accel.common import LATTICE
    from ..accel.mini import MiniTaggedPipeline
    from ..hdl.elaborate import elaborate
    from ..hdl.sim import Simulator
    from .tracker import LabelTracker

    nl = elaborate(MiniTaggedPipeline(3, guarded=True))
    oracle_sim = Simulator(nl, backend="interp")
    oracle = LabelTracker(oracle_sim, LATTICE)
    kwargs = dict(backend=backend, tag_tracking=True, lattice=LATTICE)
    if backend == "batched":
        kwargs["lanes"] = 2
    dut = Simulator(nl, **kwargs)

    compared = 0
    first_mismatch: Optional[str] = None
    for cycle, frame in enumerate(_mini_frames(cycles)):
        for path, value in frame.items():
            oracle_sim.poke(path, value)
            dut.poke(path, value)
        oracle_sim.step()
        for sig in nl.comb:
            want = oracle._last_env[sig][1]
            got = dut.tags.label_of(sig.path)
            compared += 1
            if got != want and first_mismatch is None:
                first_mismatch = (f"cycle {cycle} {sig.path}: "
                                  f"oracle={want!r} synthesized={got!r}")
        dut.step()
        for reg in nl.regs:
            want = oracle.reg_labels[reg]
            got = dut.tags.label_of(reg.path)
            compared += 1
            if got != want and first_mismatch is None:
                first_mismatch = (f"cycle {cycle} {reg.path} (post-edge): "
                                  f"oracle={want!r} synthesized={got!r}")
    return {
        "backend": backend,
        "cycles": cycles,
        "labels_compared": compared,
        "ok": first_mismatch is None,
        "first_mismatch": first_mismatch,
    }


def build_report(backends, cycles: int, check_cycles: int) -> dict:
    from ..accel.common import LATTICE
    from ..hdl.elaborate import elaborate
    from .synth import synthesize_tags

    stats = {}
    for name, build in _stats_designs().items():
        nl = elaborate(build())
        base_nets = len(nl.comb) + len(nl.regs) + len(nl.inputs)
        _tagged, plan = synthesize_tags(nl, LATTICE)
        entry = plan.stats()
        entry["base_nets"] = base_nets
        stats[name] = entry

    frames = _mini_frames(cycles)
    overhead = [_overhead(b, frames) for b in backends]
    checks = [_spot_check(b, check_cycles) for b in backends]
    return {
        "tool": "repro ifc synth",
        "design": "mini-guarded",
        "stats": stats,
        "overhead": overhead,
        "differential": checks,
        "ok": all(c["ok"] for c in checks),
    }


def render(report: dict) -> str:
    lines = ["synthesized shadow-tag report", ""]
    lines.append("tag-net counts (flat designs):")
    lines.append(f"  {'design':<16} {'base':>5} {'+tag nets':>9} "
                 f"{'tag bits':>8} {'mems':>5} {'flow':>5} {'downg':>5}")
    for name, st in report["stats"].items():
        lines.append(
            f"  {name:<16} {st['base_nets']:>5} {st['tag_nets']:>9} "
            f"{st['tag_net_bits']:>8} {st['shadow_mems']:>5} "
            f"{st['flow_sites']:>5} {st['downgrade_sites']:>5}")
    lines.append("")
    lines.append("per-backend overhead (mini-guarded workload):")
    for o in report["overhead"]:
        lines.append(
            f"  {o['backend']:<9} x{o['lanes']:<3} {o['cycles']} cycles: "
            f"plain {o['plain_s']}s  tagged {o['tagged_s']}s  "
            f"overhead {o['overhead_x']}x  "
            f"({o['tagged_lane_cycles_per_s']:.0f} tagged lane-cycles/s)")
    lines.append("")
    lines.append("differential spot-check vs interpreted LabelTracker:")
    for c in report["differential"]:
        verdict = "OK" if c["ok"] else f"MISMATCH: {c['first_mismatch']}"
        lines.append(f"  {c['backend']:<9} {c['labels_compared']} labels "
                     f"over {c['cycles']} cycles: {verdict}")
    lines.append("")
    lines.append("gate: " + ("PASS" if report["ok"] else "FAIL"))
    return "\n".join(lines)


def cmd_ifc_synth(args) -> int:
    if args.backend == "all":
        backends = ["interp", "compiled"]
        try:
            import numpy  # noqa: F401

            backends.append("batched")
        except ImportError:
            pass
    else:
        backends = [args.backend]
        if args.backend == "batched":
            try:
                import numpy  # noqa: F401
            except ImportError:
                print("batched backend needs numpy", file=sys.stderr)
                return 2

    from ..gate import gate_epilogue

    cycles = 60 if args.smoke else args.cycles
    check_cycles = 30 if args.smoke else CHECK_CYCLES
    report = build_report(backends, cycles, check_cycles)
    return gate_epilogue(
        args, ok=report["ok"], payload=report,
        render=lambda: render(report),
        artifacts={"synth_report.json": report})
