"""Dependent (dynamic) labels — ``Label(public, DL(way))`` in Fig. 3.

A :class:`DependentLabel` defers to a runtime value: the *selector*
(usually a tag register or an input such as ``way``) picks the concrete
:class:`~repro.ifc.label.Label` through a value→label mapping.  The static
checker verifies flows for every selector value (case enumeration); the
simulator's dynamic tracker resolves selectors against live values.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from ..hdl.nodes import Node
from .label import Label, join_all, meet_all
from .lattice import SecurityLattice


class DependentLabel:
    """A label that depends on the runtime value of a selector expression.

    Parameters
    ----------
    selector:
        The HDL signal (or expression) whose value picks the label.
    mapping:
        Either a dict ``{value: Label}`` or a callable ``value -> Label``.
    domain:
        The selector values to enumerate during static checking.  Required
        when ``mapping`` is a callable; defaults to the dict's keys.
    lattice:
        The security lattice all produced labels live in.
    """

    def __init__(
        self,
        selector: Node,
        mapping: Union[Dict[int, Label], Callable[[int], Label]],
        lattice: SecurityLattice,
        domain: Optional[Iterable[int]] = None,
    ):
        self.selector = selector
        self.lattice = lattice
        if callable(mapping) and not isinstance(mapping, dict):
            if domain is None:
                raise ValueError("callable mapping requires an explicit domain")
            self._fn = mapping
            self.domain: List[int] = list(domain)
        else:
            assert isinstance(mapping, dict)
            self._fn = None
            self._map = dict(mapping)
            self.domain = list(domain) if domain is not None else sorted(self._map)
        if not self.domain:
            raise ValueError("dependent label needs a non-empty domain")

    def resolve(self, value: int) -> Label:
        """The concrete label when the selector has ``value``."""
        if self._fn is not None:
            return self._fn(value)
        if value not in self._map:
            raise KeyError(
                f"selector value {value} outside dependent-label mapping"
            )
        return self._map[value]

    def upper_bound(self) -> Label:
        """Join over the domain — sound approximation at *source* positions."""
        return join_all((self.resolve(v) for v in self.domain), self.lattice)

    def lower_bound(self) -> Label:
        """Meet over the domain — sound approximation at *sink* positions."""
        return meet_all((self.resolve(v) for v in self.domain), self.lattice)

    def __repr__(self) -> str:
        sel = getattr(self.selector, "path", None) or repr(self.selector)
        return f"DL({sel})"


class CellTagLabel:
    """Per-cell dependent label for a *tagged* memory (Fig. 5 of the paper).

    The data memory's cell at address ``a`` carries the label decoded from
    the sibling tag memory's cell at the same address.  The static checker
    correlates accesses through a shared address expression: the runtime
    tag check and the guarded data access must address both memories with
    the same signal (which is how the hardware is built anyway).

    ``domain`` restricts the tag values enumerated during static checking
    to those the design can legally install (e.g. the tags the arbiter
    issues); it defaults to the full tag space.
    """

    def __init__(self, tag_mem, lattice: SecurityLattice,
                 domain: Optional[Iterable[int]] = None):
        self.tag_mem = tag_mem
        self.lattice = lattice
        if domain is None:
            self.domain: List[int] = list(range(1 << (2 * len(lattice.principals))))
        else:
            self.domain = list(domain)
        if not self.domain:
            raise ValueError("tagged-memory label needs a non-empty tag domain")

    def resolve(self, tag_value: int) -> Label:
        return Label.decode(self.lattice, tag_value)

    def upper_bound(self) -> Label:
        return join_all((self.resolve(v) for v in self.domain), self.lattice)

    def lower_bound(self) -> Label:
        return meet_all((self.resolve(v) for v in self.domain), self.lattice)

    def __repr__(self) -> str:
        return f"CellTag({self.tag_mem.name})"


LabelLike = Union[Label, DependentLabel]


def tag_label(tag_signal: Node, lattice: SecurityLattice) -> DependentLabel:
    """Dependent label decoding a hardware security tag (§4's 8-bit tags).

    The tag encodes ``(conf bits, integ bits)``; every tag value maps to
    the decoded label, so the domain is the full tag space.
    """
    width = 2 * len(lattice.principals)
    if tag_signal.width < width:
        raise ValueError(
            f"tag signal is {tag_signal.width} bits; lattice needs {width}"
        )
    return DependentLabel(
        tag_signal,
        lambda v: Label.decode(lattice, v),
        lattice,
        domain=range(1 << width),
    )


def resolve_label(label: LabelLike, value: Optional[int] = None) -> Label:
    """Resolve a possibly-dependent label given the selector value."""
    if isinstance(label, DependentLabel):
        if value is None:
            return label.upper_bound()
        return label.resolve(value)
    return label
