"""Gate-level information flow tracking (GLIFT) — the paper's §5
alternative to security-typed HDLs.

Where :class:`~repro.ifc.tracker.LabelTracker` propagates *labels* at
word granularity, GLIFT shadows every signal with a per-bit **taint
mask** and propagates it with value-aware gate rules (Tiwari et al.,
ASPLOS'09): an output bit is tainted exactly when some tainted input bit
*can affect it* given the untainted inputs' values.  The classic
precision example: ``a AND 0`` is untainted even if ``a`` is tainted.

This implementation works on the same netlist IR at word level, applying
the gate rules bitwise over whole vectors:

====================  =====================================================
node                  taint rule (t = taint mask, v = value)
====================  =====================================================
``a & b``             ``(ta & tb) | (ta & vb) | (tb & va)``
``a | b``             ``(ta & tb) | (ta & ~vb) | (tb & ~va)``
``a ^ b``, ``~a``     ``ta | tb``
``mux(s, a, b)``      untainted s: taken branch; tainted s:
                      ``ta | tb | (va ^ vb)``
``a == b``            0 if untainted bits already differ, else any-taint
``a + b``             taint ripples upward from the lowest tainted bit
shifts                shifted mask (constant amount); saturate if the
                      amount is tainted
memories              per-cell masks; tainted addresses taint everything
====================  =====================================================

``Downgrade`` markers clear taint when ``honor_downgrades`` is set —
that is exactly how a GLIFT deployment realises the paper's
declassification points; with it off, the tracker demonstrates why raw
noninterference is unusable for crypto (the ciphertext is 100 % tainted).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..hdl.memory import Mem
from ..hdl.netlist import Netlist
from ..hdl.nodes import Node
from ..hdl.signal import Signal
from ..hdl.types import mask_for


def _ripple_up(mask: int, width: int) -> int:
    """All bits at or above the lowest set bit (carry propagation)."""
    if mask == 0:
        return 0
    lowest = mask & -mask
    return mask_for(width) & ~(lowest - 1)


class TaintViolation:
    """Tainted bits reached a clean-declared sink."""

    def __init__(self, cycle: int, sink: str, taint_mask: int):
        self.cycle = cycle
        self.sink = sink
        self.taint_mask = taint_mask

    def __repr__(self) -> str:
        return (f"cycle {self.cycle}: taint {self.taint_mask:#x} "
                f"reached {self.sink}")


class GliftTracker:
    """Bit-precise taint tracking alongside a simulation.

    Parameters
    ----------
    sim:
        A running :class:`~repro.hdl.sim.Simulator`.
    sources:
        ``{signal-or-path: taint mask}`` — which input/register bits are
        tainted at every cycle (registers: initial taint only).
    sinks:
        signals that must stay taint-free; reaching taint is recorded as
        a :class:`TaintViolation`.
    honor_downgrades:
        clear taint at ``Downgrade`` markers (the declassification
        story); default False (pure noninterference).
    """

    def __init__(self, sim, sources: Dict[Union[Signal, str], int],
                 sinks: Optional[List[Union[Signal, str]]] = None,
                 honor_downgrades: bool = False):
        self.sim = sim
        self.netlist: Netlist = sim.netlist
        self.honor_downgrades = honor_downgrades
        self.violations: List[TaintViolation] = []

        self.source_taint: Dict[Signal, int] = {}
        for key, mask in sources.items():
            sig = sim._resolve(key)
            self.source_taint[sig] = mask & mask_for(sig.width)
        self.sinks: List[Signal] = [sim._resolve(s) for s in (sinks or [])]

        self.reg_taint: Dict[Signal, int] = {}
        for reg in self.netlist.regs:
            self.reg_taint[reg] = self.source_taint.get(reg, 0)
        self.mem_taint: Dict[Mem, List[int]] = {
            m: [0] * m.depth for m in self.netlist.mems
        }
        self._last_comb: Dict[Signal, int] = {}
        sim.add_watcher(self._on_cycle)

    # -- queries ------------------------------------------------------------
    def taint_of(self, sig: Union[Signal, str]) -> int:
        sig = self.sim._resolve(sig)
        if sig in self.reg_taint:
            return self.reg_taint[sig]
        if sig in self._last_comb:
            return self._last_comb[sig]
        if sig in self.source_taint:
            return self.source_taint[sig]
        raise KeyError(f"no taint tracked yet for {sig.path}")

    def mem_taint_of(self, mem: Union[Mem, str], addr: int) -> int:
        mem = self.sim._resolve_mem(mem)
        return self.mem_taint[mem][addr]

    def ok(self) -> bool:
        return not self.violations

    def _record(self, violation: TaintViolation) -> None:
        self.violations.append(violation)
        from ..obs import telemetry as _telemetry

        obs = _telemetry()
        if obs is not None:
            obs.security.emit(
                "glift_violation", cycle=violation.cycle, source="glift",
                sink=violation.sink, taint_mask=violation.taint_mask)

    def refresh(self) -> None:
        """Recompute combinational taints for the *current* state.

        The watcher fires just before each clock commit, so after
        ``sim.step()`` the cached combinational taints describe the
        previous cycle; call this before reading taints that must align
        with fresh ``peek`` values.
        """
        nl = self.netlist
        env: Dict = {}
        for sig in nl.inputs:
            env[id(sig)] = (self.sim.peek(sig), self.source_taint.get(sig, 0))
        for reg in nl.regs:
            env[id(reg)] = (self.sim.peek(reg), self.reg_taint[reg])
        self._last_comb = {}
        for sig in nl.comb:
            value, taint = self._eval(nl.drivers[sig], env)
            env[id(sig)] = (value, taint)
            self._last_comb[sig] = taint

    # -- propagation ---------------------------------------------------------
    def _eval(self, node: Node, env: Dict) -> Tuple[int, int]:
        """(value, taint mask) of a node under the current cycle."""
        nid = id(node)
        hit = env.get(nid)
        if hit is not None:
            return hit
        result = self._eval_uncached(node, env)
        env[nid] = result
        return result

    def _eval_uncached(self, node: Node, env: Dict) -> Tuple[int, int]:
        kind = node.kind
        if kind == "const":
            return node.value, 0
        if kind == "signal":
            raise AssertionError(f"unseeded signal {node.path}")

        if kind == "unary":
            av, at = self._eval(node.a, env)
            value = node.eval_op([av])
            if node.op == "not":
                return value, at
            # reductions: tainted iff a tainted bit can flip the result
            if at == 0:
                return value, 0
            if node.op == "redor":
                # an untainted 1 fixes the output at 1
                if av & ~at:
                    return value, 0
                return value, 1
            if node.op == "redand":
                # an untainted 0 fixes the output at 0
                untainted_zero = (~av) & (~at) & mask_for(node.a.width)
                if untainted_zero:
                    return value, 0
                return value, 1
            return value, 1  # redxor: any taint flips parity

        if kind == "binary":
            av, at = self._eval(node.a, env)
            bv, bt = self._eval(node.b, env)
            value = node.eval_op([av, bv])
            op = node.op
            w = node.width
            if op == "and":
                taint = (at & bt) | (at & bv) | (bt & av)
                return value, taint & mask_for(w)
            if op == "or":
                taint = (at & bt) | (at & ~bv) | (bt & ~av)
                return value, taint & mask_for(w)
            if op == "xor":
                return value, (at | bt) & mask_for(w)
            if op in ("add", "sub", "mul"):
                return value, _ripple_up(at | bt, w)
            if op in ("eq", "ne"):
                both_clean = ~(at | bt)
                if (av ^ bv) & both_clean & mask_for(node.a.width):
                    return value, 0  # untainted disagreement decides it
                return value, 1 if (at | bt) else 0
            if op in ("lt", "le", "gt", "ge"):
                return value, 1 if (at | bt) else 0
            if op == "shl":
                if bt:
                    return value, mask_for(w)
                return value, (at << bv) & mask_for(w)
            if op == "shr":
                if bt:
                    return value, mask_for(w)
                return value, at >> bv
            raise AssertionError(op)

        if kind == "mux":
            sv, st = self._eval(node.sel, env)
            tv, tt = self._eval(node.if_true, env)
            fv, ft = self._eval(node.if_false, env)
            value = tv if sv else fv
            if st == 0:
                return value, tt if sv else ft
            return value, (tt | ft | (tv ^ fv)) & mask_for(node.width)

        if kind == "slice":
            av, at = self._eval(node.a, env)
            value = node.eval_op([av])
            return value, (at >> node.lo) & mask_for(node.width)

        if kind == "concat":
            value, taint, shift = 0, 0, 0
            for part in reversed(node.parts):
                pv, pt = self._eval(part, env)
                value |= pv << shift
                taint |= pt << shift
                shift += part.width
            return value, taint

        if kind == "memread":
            av, at = self._eval(node.addr, env)
            mem = node.mem
            if at:
                # a tainted address can reach any cell: the result carries
                # every cell's taint, plus full taint wherever the cells'
                # contents differ (the address choice is visible there)
                value = (self.sim.peek_mem(mem, av)
                         if av < mem.depth else 0)
                taint = 0
                for t in self.mem_taint[mem]:
                    taint |= t
                if self._cells_differ(mem):
                    taint = mask_for(node.width)
                return value, taint
            if av < mem.depth:
                return self.sim.peek_mem(mem, av), self.mem_taint[mem][av]
            return 0, 0

        if kind == "downgrade":
            av, at = self._eval(node.a, env)
            if self.honor_downgrades:
                return av, 0
            return av, at

        raise AssertionError(kind)

    def _cells_differ(self, mem: Mem) -> bool:
        first = self.sim.peek_mem(mem, 0)
        return any(self.sim.peek_mem(mem, i) != first
                   for i in range(1, mem.depth))

    def _on_cycle(self, sim) -> None:
        nl = self.netlist
        env: Dict = {}
        for sig in nl.inputs:
            env[id(sig)] = (sim.peek(sig), self.source_taint.get(sig, 0))
        for reg in nl.regs:
            env[id(reg)] = (sim.peek(reg), self.reg_taint[reg])

        self._last_comb = {}
        for sig in nl.comb:
            value, taint = self._eval(nl.drivers[sig], env)
            env[id(sig)] = (value, taint)
            self._last_comb[sig] = taint

        for sink in self.sinks:
            taint = (self._last_comb.get(sink)
                     if sink in self._last_comb else self.reg_taint.get(sink))
            if taint:
                self._record(TaintViolation(sim.cycle, sink.path, taint))

        next_taint = {}
        for reg, nxt in nl.reg_next.items():
            next_taint[reg] = self._eval(nxt, env)[1]

        pending = []
        for mem, writes in nl.mem_writes.items():
            for w in writes:
                if w.cond is not None:
                    cv, ct = self._eval(w.cond, env)
                    if cv == 0 and ct == 0:
                        continue
                else:
                    cv, ct = 1, 0
                av, at_ = self._eval(w.addr, env)
                dv, dt = self._eval(w.data, env)
                if at_:
                    # tainted address: every cell may have been written
                    for i in range(mem.depth):
                        pending.append((mem, i,
                                        self.mem_taint[mem][i] | dt
                                        | mask_for(mem.width)))
                elif cv or ct:
                    extra = mask_for(mem.width) if ct else 0
                    if cv:
                        pending.append((mem, av, dt | extra))
                    else:
                        pending.append(
                            (mem, av, self.mem_taint[mem][av] | extra)
                        )
        for mem, addr, taint in pending:
            if addr < mem.depth:
                self.mem_taint[mem][addr] = taint
        self.reg_taint = next_taint
