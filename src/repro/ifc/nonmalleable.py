"""Nonmalleable downgrading (§2.4, Eq. (1) of the paper).

Downgrading weakens noninterference on purpose: declassification lowers
confidentiality (ciphertext release), endorsement raises integrity.
Nonmalleable IFC (Cecchetti et al., CCS'17) bounds the damage:

* **declassification** — ``C(ℓ) →p C(ℓ′)`` requires
  ``C(ℓ) ⊑C C(ℓ′) ⊔C r(I(p))``: only a sufficiently *trusted* principal
  may release secrets.  The paper's worked example: ``(S,U)`` cannot be
  declassified to ``(P,U)`` by an untrusted principal because
  ``S ⋢C P ⊔C r(U) = P``.
* **endorsement** — ``I(ℓ) →p I(ℓ′)`` requires
  ``I(ℓ) ⊑I I(ℓ′) ⊔I r(C(p))``: the dual condition, implemented verbatim
  from Eq. (1) (the paper gives no worked endorsement example).

These checks appear in two places in the reproduction: statically, at
every :class:`~repro.hdl.nodes.Downgrade` marker the checker validates
the rule for every hypothesis; dynamically, the protected accelerator's
declassifier implements the same subset comparison over live tag bits
(``(c_data & ~i_user) == 0``) — see §3.2.2's master-key argument.
"""

from __future__ import annotations

from typing import Optional

from .label import Label


def may_declassify(data: Label, target: Label, authority: Label) -> bool:
    """Eq. (1), confidentiality row: ``C(ℓ) ⊑C C(ℓ′) ⊔C r(I(p))``."""
    lat = data.lattice
    bound = lat.conf_join(target.conf, lat.reflect_ic(authority.integ))
    return lat.conf_leq(data.conf, bound)


def may_endorse(data: Label, target: Label, authority: Label) -> bool:
    """Eq. (1), integrity row: ``I(ℓ) ⊑I I(ℓ′) ⊔I r(C(p))``."""
    lat = data.lattice
    bound = lat.integ_join(target.integ, lat.reflect_ci(authority.conf))
    return lat.integ_leq(data.integ, bound)


def declassified(data: Label, target: Label) -> Label:
    """Result label of a declassification: target confidentiality, with the
    data's integrity joined in (declassification never launders taint)."""
    lat = data.lattice
    return Label(lat, target.conf, lat.integ_join(data.integ, target.integ))


def endorsed(data: Label, target: Label) -> Label:
    """Result label of an endorsement: target integrity, confidentiality
    joined (endorsement never hides secrets)."""
    lat = data.lattice
    return Label(lat, lat.conf_join(data.conf, target.conf), target.integ)


def check_downgrade(
    kind: str, data: Label, target: Label, authority: Label
) -> Optional[str]:
    """Validate one downgrade; returns an error message or None.

    ``kind`` is ``"declassify"`` or ``"endorse"``.
    """
    lat = data.lattice
    if kind == "declassify":
        if not may_declassify(data, target, authority):
            r = lat.conf_names(lat.reflect_ic(authority.integ))
            return (
                f"nonmalleable declassification rejected: "
                f"C(data)={lat.conf_names(data.conf)} ⋢C "
                f"C(target)={lat.conf_names(target.conf)} ⊔C r(I(p))={r}"
            )
        return None
    if kind == "endorse":
        if not may_endorse(data, target, authority):
            r = lat.integ_names(lat.reflect_ci(authority.conf))
            return (
                f"nonmalleable endorsement rejected: "
                f"I(data)={lat.integ_names(data.integ)} ⋢I "
                f"I(target)={lat.integ_names(target.integ)} ⊔I r(C(p))={r}"
            )
        return None
    raise ValueError(f"unknown downgrade kind {kind!r}")


def downgraded_label(kind: str, data: Label, target: Label) -> Label:
    if kind == "declassify":
        return declassified(data, target)
    if kind == "endorse":
        return endorsed(data, target)
    raise ValueError(f"unknown downgrade kind {kind!r}")
