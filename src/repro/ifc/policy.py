"""Declarative security policies — Table 1 of the paper as data.

Each :class:`FlowPolicy` captures one row of Table 1: the security asset,
the requirement, whether it is a confidentiality (C) or integrity (I)
policy, the source/sink objects with their labels, and the restriction.
The evaluation harness (:mod:`repro.eval.table1`) binds each policy to a
concrete experiment on the protected accelerator: a flow that must be
*allowed* and a flow that must be *rejected*.
"""

from __future__ import annotations

from typing import List


class FlowPolicy:
    """One security requirement expressed as an information-flow policy."""

    def __init__(
        self,
        policy_id: str,
        asset: str,
        requirement: str,
        kind: str,
        source: str,
        sink: str,
        restriction: str,
    ):
        if kind not in ("C", "I"):
            raise ValueError("policy kind must be 'C' or 'I'")
        self.policy_id = policy_id
        self.asset = asset
        self.requirement = requirement
        self.kind = kind
        self.source = source
        self.sink = sink
        self.restriction = restriction

    def __repr__(self) -> str:
        return f"<Policy {self.policy_id} [{self.kind}] {self.asset}: {self.requirement}>"


#: The six rows of Table 1, verbatim from the paper.
TABLE1_POLICIES: List[FlowPolicy] = [
    FlowPolicy(
        "P1", "Keys",
        "A classified key cannot be read out by a less confidential user.",
        "C",
        "Key registers ℓ(key)", "User registers/outputs ℓ(user)",
        "key ↛ user if ℓ(key) ⋢C ℓ(user)",
    ),
    FlowPolicy(
        "P2", "Keys",
        "A protected key cannot be modified by a less trusted user.",
        "I",
        "User inputs ℓ(user)", "Key registers ℓ(key)",
        "user ↛ key if ℓ(user) ⋢I ℓ(key)",
    ),
    FlowPolicy(
        "P3", "Keys",
        "A classified key cannot be used by a less trusted user.",
        "C",
        "Key registers ℓ(key)", "Ciphertext output ⊥",
        "ciphertext ↛ output if ℓ(key) ⋢C r(ℓ(user))",
    ),
    FlowPolicy(
        "P4", "Plaintext",
        "A low confidential user cannot read plaintext from a higher "
        "confidential user.",
        "C",
        "Plaintext buffer ℓ(pt)", "User registers/outputs ℓ(user)",
        "plaintext ↛ user if ℓ(pt) ⋢C ℓ(user)",
    ),
    FlowPolicy(
        "P5", "Plaintext",
        "A less trusted user cannot modify data beyond its authority.",
        "I",
        "User inputs ℓ(user)", "Data buffers/register ℓ(data)",
        "user ↛ data if ℓ(user) ⋢I ℓ(data)",
    ),
    FlowPolicy(
        "P6", "Configs",
        "Configuration registers can be read by any users, but only be "
        "modified by the supervisor.",
        "I",
        "User inputs ℓ(user)", "Configuration registers ℓ(cr)",
        "cr → user as ⊥ ⊑C ℓ(user); user ↛ cr as ℓ(user) ⋢I ⊤; "
        "sup → cr as ℓ(sup) ⊑I ⊤",
    ),
]


class PolicyCheckResult:
    """Outcome of exercising one policy on a concrete design."""

    def __init__(self, policy: FlowPolicy, allowed_ok: bool, rejected_ok: bool,
                 notes: str = ""):
        self.policy = policy
        self.allowed_ok = allowed_ok      # the legitimate flow went through
        self.rejected_ok = rejected_ok    # the forbidden flow was stopped
        self.notes = notes

    @property
    def enforced(self) -> bool:
        return self.allowed_ok and self.rejected_ok

    def __repr__(self) -> str:
        status = "ENFORCED" if self.enforced else "BROKEN"
        return f"<{self.policy.policy_id} {status}>"
