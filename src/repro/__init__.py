"""repro — reproduction of the DAC'19 paper "Designing Secure Cryptographic
Accelerators with Information Flow Enforcement: A Case Study on AES".

Subpackages
-----------
``repro.hdl``
    Security-typed hardware eDSL and cycle-accurate simulator.
``repro.ifc``
    Security lattices, labels, nonmalleable downgrading, the static IFC
    checker, and the dynamic (RTLIFT-style) label tracker.
``repro.aes``
    Software reference AES (FIPS-197) used as the golden model.
``repro.accel``
    The baseline and protected pipelined AES accelerators, in the eDSL.
``repro.soc``
    Multi-user SoC harness around the accelerator (Fig. 2 of the paper).
``repro.attacks``
    Reproductions of the attacks the paper's methodology rules out.
``repro.fpga``
    Virtex-7-calibrated area/timing estimation (Table 2).
``repro.eval``
    Drivers that regenerate every table and figure of the evaluation.
"""

__version__ = "1.0.0"
