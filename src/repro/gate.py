"""Shared epilogue for the CI gate subcommands.

Every gate command (``obs leakage``, ``faults``, ``obs flows``, ``obs
power``, ``ifc synth``, ``obs coverage``) used to end with the same
hand-rolled block: print the machine-readable payload under ``--json``
or the human rendering otherwise, write the report artifacts under
``--out``, and map the verdict to the process exit code (0 pass, 1 gate
fail; usage errors return 2 before reaching this point).
:func:`gate_epilogue` is that block, written once.

:func:`strip_volatile` supports the seeded-determinism contract: gate
reports are deterministic functions of their seed *except* for a small
set of wall-clock-derived fields (trace throughput, campaign seconds).
Stripping those yields the canonical byte-comparable form the
determinism tests (``tests/obs/test_determinism.py``) hold fixed.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Union

#: Report keys whose values derive from wall-clock measurement and are
#: therefore excluded from the byte-identical determinism contract.
VOLATILE_KEYS = frozenset({
    "traces_per_second",
    "campaign_seconds",
    "wall_seconds",
    "cycles_per_second",
    "timestamp",
})

ArtifactContent = Union[str, dict, Callable[[], Union[str, dict]]]


def strip_volatile(payload):
    """A deep copy of ``payload`` with every volatile key removed.

    Lists and dicts are walked recursively; scalars pass through.  The
    result of ``json.dumps(strip_volatile(report), sort_keys=True)`` is
    byte-identical across runs with the same seed.
    """
    if isinstance(payload, dict):
        return {k: strip_volatile(v) for k, v in sorted(payload.items())
                if k not in VOLATILE_KEYS}
    if isinstance(payload, list):
        return [strip_volatile(v) for v in payload]
    return payload


def canonical_json(payload) -> str:
    """The determinism-test serialization: volatile keys stripped,
    keys sorted, no whitespace variation."""
    return json.dumps(strip_volatile(payload), sort_keys=True)


def write_artifact(path: str, content: Union[str, dict]) -> None:
    """Write one report artifact: dicts as indented sorted JSON,
    strings verbatim."""
    with open(path, "w") as f:
        if isinstance(content, dict):
            json.dump(content, f, sort_keys=True, indent=2)
        else:
            f.write(content)


def gate_epilogue(args, *, ok: bool, payload: dict,
                  render: Union[str, Callable[[], str]],
                  artifacts: Optional[Dict[str, ArtifactContent]] = None,
                  writer: Optional[Callable[[str], Dict[str, str]]] = None,
                  ) -> int:
    """The shared tail of a gate subcommand.

    ``payload`` is the machine-readable report (printed as one
    sorted-keys JSON line under ``--json``); ``render`` the human form
    (a string, or a zero-arg callable evaluated only when needed).
    ``artifacts`` maps filenames to content (str, dict, or a lazy
    callable producing either) written under ``--out``.  ``writer`` is
    an escape hatch for commands with bespoke artifact writers (e.g.
    ``obs flows``): called with the output directory, returns
    ``{kind: path}`` for the confirmation lines.  Returns the exit
    code: 0 when ``ok``, 1 otherwise.
    """
    if getattr(args, "json", False):
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render() if callable(render) else render)
    out = getattr(args, "out", None)
    if out:
        os.makedirs(out, exist_ok=True)
        for name, content in (artifacts or {}).items():
            if callable(content):
                content = content()
            path = os.path.join(out, name)
            write_artifact(path, content)
            print(f"wrote {name}: {path}")
        if writer is not None:
            for kind, path in sorted(writer(out).items()):
                print(f"wrote {kind}: {path}")
    return 0 if ok else 1
