"""Scratchpad buffer overrun (Fig. 5) — overwrite a neighbour's key.

The host interface computes the scratchpad cell as ``slot*2 + word``
with a 3-bit ``word`` and no bounds check.  Eve, owner of slot 2, issues
key loads with ``word = 2, 3``: the writes land in slot 3's cells —
Alice's key — replacing it with a key Eve knows.  Alice's subsequent
"encryptions" then use Eve's key, and Eve can decrypt everything.

In the protected design the cells' tags stop the cross-slot writes, the
``blocked`` counter ticks, and Alice's key (and ciphertext) is unchanged.
"""

from __future__ import annotations


from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import user_label
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected
from ..aes import decrypt_block, encrypt_block


class OverflowResult:
    """Outcome of the overrun attempt."""

    def __init__(self, alice_cell_hi: int, alice_cell_lo: int,
                 eve_payload: int, alice_ciphertext: int,
                 eve_recovers_plaintext: bool, blocked_count: int):
        self.alice_cell_hi = alice_cell_hi
        self.alice_cell_lo = alice_cell_lo
        self.eve_payload = eve_payload
        self.alice_ciphertext = alice_ciphertext
        self.eve_recovers_plaintext = eve_recovers_plaintext
        self.blocked_count = blocked_count

    @property
    def overwritten(self) -> bool:
        payload_hi = self.eve_payload >> 64
        payload_lo = self.eve_payload & ((1 << 64) - 1)
        return (self.alice_cell_hi, self.alice_cell_lo) == (payload_hi, payload_lo)

    def __repr__(self) -> str:
        return (f"OverflowResult(overwritten={self.overwritten}, "
                f"eve_recovers_plaintext={self.eve_recovers_plaintext}, "
                f"blocked={self.blocked_count})")


ALICE_KEY = 0xA11CEA11CEA11CEA11CEA11CEA11CE00
EVE_KEY = 0xE7EE7EE7EE7EE7EE7EE7EE7EE7EE7E00
EVE_PAYLOAD_KEY = 0xBADBADBADBADBADBADBADBADBADBAD00
ALICE_SECRET = 0x5EC12E7000000000000000000000A5A5


def run_overflow_attack(protected: bool) -> OverflowResult:
    """Eve overruns her slot trying to replace Alice's key."""
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()

    # provisioning: Eve owns slot 2 (cells 4,5), Alice slot 3 (cells 6,7)
    if protected:
        drv.allocate_slot(2, eve)
        drv.allocate_slot(3, alice)
    drv.load_key(eve, 2, EVE_KEY)
    drv.load_key(alice, 3, ALICE_KEY)

    # the overrun: Eve writes "her" key with word offsets 2 and 3, which
    # the unchecked index arithmetic maps into slot 3's cells
    payload_hi = EVE_PAYLOAD_KEY >> 64
    payload_lo = EVE_PAYLOAD_KEY & ((1 << 64) - 1)
    drv.load_key_cell(eve, 2, 2, payload_hi)
    drv.load_key_cell(eve, 2, 3, payload_lo)
    # word==3 is odd, so the (baseline) controller even re-expands slot 2's
    # neighbour... wait for any expansion to settle
    drv.step(20)

    cell_hi = drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 6)
    cell_lo = drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 7)

    # Alice encrypts her secret as usual
    drv.set_reader(alice)
    ct, _lat = drv.encrypt_blocking(alice, 3, ALICE_SECRET)

    # Eve collects the ciphertext (public in both designs once released)
    # and tries her payload key
    recovered = False
    if ct is not None:
        recovered = decrypt_block(ct, EVE_PAYLOAD_KEY) == ALICE_SECRET

    blocked = drv.counters().get("blocked_count", 0)
    return OverflowResult(cell_hi, cell_lo, EVE_PAYLOAD_KEY, ct or 0,
                          recovered, blocked)
