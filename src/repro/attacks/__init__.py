"""repro.attacks — reproductions of the attacks the paper rules out.

Each module stages one §2.1/§3.1 vulnerability against the baseline
accelerator (where it succeeds) and against the protected accelerator
(where it is blocked, suppressed, or statically rejected):

* :mod:`~repro.attacks.timing_channel` — pipeline-stall covert channel;
* :mod:`~repro.attacks.key_timing` — key-dependent key-schedule timing;
* :mod:`~repro.attacks.buffer_overflow` — scratchpad overrun (Fig. 5);
* :mod:`~repro.attacks.debug_leak` — trace-buffer key recovery;
* :mod:`~repro.attacks.key_misuse` — master-key use by regular users;
* :mod:`~repro.attacks.trojan` — data-leak Trojan caught statically.
"""

from .buffer_overflow import OverflowResult, run_overflow_attack
from .debug_leak import DebugLeakResult, invert_round1_trace, run_debug_leak
from .key_misuse import MisuseResult, run_key_misuse
from .key_timing import (
    distinguish_keys,
    expansion_cycles,
    predicted_extra_cycles,
    timing_profile,
)
from .timing_channel import CovertChannelResult, run_covert_channel
from .trojan import TrojanStageC, check_clean_stage, check_trojan_stage

__all__ = [
    "CovertChannelResult",
    "DebugLeakResult",
    "MisuseResult",
    "OverflowResult",
    "TrojanStageC",
    "check_clean_stage",
    "check_trojan_stage",
    "distinguish_keys",
    "expansion_cycles",
    "invert_round1_trace",
    "predicted_extra_cycles",
    "run_covert_channel",
    "run_debug_leak",
    "run_key_misuse",
    "run_overflow_attack",
    "timing_profile",
]
