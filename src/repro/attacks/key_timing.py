"""Key-dependent timing of the key schedule — the Fig. 6 vulnerability.

The flawed baseline key-expansion unit takes an extra cycle whenever the
evolving round key's MSB is set (a plausible "optimisation" path, after
Koeune–Quisquater's observation that data-dependent shortcuts create
timing oracles).  An attacker who can time key loads — e.g. by issuing
an encryption immediately after and polling ``in_ready``/busy — learns
the number of MSB-set round keys, which partitions the key space.

Statically, labelling the flawed unit makes the checker flag its
``busy``/``ready`` signals exactly like the ``valid`` signal of Fig. 6;
the protected (constant-time) unit checks clean and shows no timing
variation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..accel.key_expand_unit import KeyExpandUnit
from ..aes.key_schedule import expand_key, round_key_as_int
from ..hdl.sim import Simulator


def expansion_cycles(key: int, protected: bool,
                     timing_flaw: bool = None) -> int:
    """Cycles the expansion unit stays busy for ``key``."""
    if timing_flaw is None:
        timing_flaw = not protected
    unit = KeyExpandUnit(protected=protected, timing_flaw=timing_flaw)
    sim = Simulator(unit)
    sim.poke("keyexp.start", 1)
    sim.poke("keyexp.slot", 1)
    sim.poke("keyexp.key", key)
    sim.poke("keyexp.key_tag", 0x11)
    sim.step()
    sim.poke("keyexp.start", 0)
    return sim.run_until("keyexp.ready", 1, 200) + 1


def predicted_extra_cycles(key: int) -> int:
    """The flaw's timing model: one extra cycle per MSB-set round key
    among rounds 0..9 (the skip applies while producing the next key)."""
    rks = [round_key_as_int(rk) for rk in expand_key(key, 128)]
    return sum(1 for rk in rks[:10] if rk >> 127)


def timing_profile(keys: List[int], protected: bool) -> Dict[int, int]:
    """Map key -> observed expansion cycles."""
    return {key: expansion_cycles(key, protected) for key in keys}


def leaked_bits_estimate(n_samples: int = 64, seed: int = 0,
                         protected: bool = False) -> float:
    """Empirical entropy of the expansion-time distribution over random
    keys — a lower bound on what the timing oracle leaks per key load.

    The flaw adds one cycle per MSB-set evolving round key, so the
    timing is ``base + Binomial(10, 1/2)``-distributed: about 2.7 bits
    of key-dependent information.  The protected unit's distribution is
    a point mass (0 bits).
    """
    import math
    import random

    rng = random.Random(seed)
    counts: Dict[int, int] = {}
    for _ in range(n_samples):
        t = expansion_cycles(rng.getrandbits(128), protected)
        counts[t] = counts.get(t, 0) + 1
    entropy = 0.0
    for c in counts.values():
        p = c / n_samples
        entropy -= p * math.log2(p)
    return entropy


def distinguish_keys(key_a: int, key_b: int,
                     protected: bool) -> Tuple[bool, int, int]:
    """Can timing distinguish two candidate keys?

    Returns ``(distinguishable, cycles_a, cycles_b)``.
    """
    ca = expansion_cycles(key_a, protected)
    cb = expansion_cycles(key_b, protected)
    return ca != cb, ca, cb
