"""Inappropriate use of the master key (§3.2.2).

The master key lives in slot 0 with label ``(⊤,⊤)``.  A regular user who
can aim the engine at slot 0 obtains valid master-key ciphertext — a
building block for forging supervisor-encrypted data or for chosen-
plaintext analysis of supervisor traffic.

Baseline: nothing intervenes; Eve gets ``AES_masterkey(pt)``.
Protected: the block's tag joins the master key's ⊤ confidentiality, the
exit declassification fails the nonmalleable check
(``⊤ ⋢C r(ℓ(eve))``), and the block is suppressed (counted); the same
request issued by the supervisor succeeds, because only the supervisor
"has high enough integrity to declassify encryption with the master
key."
"""

from __future__ import annotations

from typing import Optional

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import MASTER_SLOT, supervisor_label, user_label
from ..accel.driver import AcceleratorDriver
from ..accel.key_expand_unit import DEFAULT_MASTER_KEY
from ..accel.protected import AesAcceleratorProtected
from ..aes import encrypt_block

PROBE_PT = 0x0123456789ABCDEF0123456789ABCDEF


class MisuseResult:
    def __init__(self, eve_ciphertext: Optional[int],
                 supervisor_ciphertext: Optional[int],
                 suppressed_count: int):
        self.eve_ciphertext = eve_ciphertext
        self.supervisor_ciphertext = supervisor_ciphertext
        self.suppressed_count = suppressed_count

    @property
    def eve_succeeded(self) -> bool:
        return self.eve_ciphertext == encrypt_block(PROBE_PT, DEFAULT_MASTER_KEY)

    @property
    def supervisor_succeeded(self) -> bool:
        return (self.supervisor_ciphertext
                == encrypt_block(PROBE_PT, DEFAULT_MASTER_KEY))

    def __repr__(self) -> str:
        return (f"MisuseResult(eve={self.eve_succeeded}, "
                f"supervisor={self.supervisor_succeeded}, "
                f"suppressed={self.suppressed_count})")


def run_key_misuse(protected: bool) -> MisuseResult:
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    eve = user_label("p1").encode()
    sup = supervisor_label().encode()

    drv.set_reader(eve)
    eve_ct, _ = drv.encrypt_blocking(eve, MASTER_SLOT, PROBE_PT, max_cycles=80)

    drv.set_reader(sup)
    sup_ct, _ = drv.encrypt_blocking(sup, MASTER_SLOT, PROBE_PT, max_cycles=80)

    return MisuseResult(eve_ct, sup_ct,
                        drv.counters().get("suppressed_count", 0))
