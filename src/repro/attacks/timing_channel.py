"""Pipeline-stall covert timing channel (§3.1) and its Fig. 8 defeat.

Scenario: Alice (or a process acting as her output *reader*) wants to
leak a secret bit-string to Eve, with whom she shares the fine-grained
pipelined accelerator.  For each bit:

* Alice keeps several encryptions in flight and her reader withholds
  ``out_ready`` (bit = 1) or drains promptly (bit = 0);
* Eve times one of her own encryptions issued in the same window.

On the **baseline**, backpressure stalls the whole pipeline, so Eve's
latency is visibly higher for 1-bits — the channel decodes perfectly.
On the **protected** design the stall controller's meet check denies the
stall while Eve's (lower-confidentiality) block is in flight; Alice's
blocks park in the holding buffer (or drop, costing only availability),
Eve's latency stays flat, and the decoded string carries ~0 bits of
mutual information.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import user_label
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected


class CovertChannelResult:
    """Outcome of one covert-channel run."""

    def __init__(self, secret_bits: List[int], decoded_bits: List[int],
                 latencies_zero: List[int], latencies_one: List[int]):
        self.secret_bits = secret_bits
        self.decoded_bits = decoded_bits
        self.latencies_zero = latencies_zero
        self.latencies_one = latencies_one

    @property
    def accuracy(self) -> float:
        hits = sum(1 for s, d in zip(self.secret_bits, self.decoded_bits)
                   if s == d)
        return hits / len(self.secret_bits)

    def mutual_information(self) -> float:
        """Empirical mutual information (bits) between sent and decoded."""
        n = len(self.secret_bits)
        joint: Dict[Tuple[int, int], float] = {}
        for s, d in zip(self.secret_bits, self.decoded_bits):
            joint[(s, d)] = joint.get((s, d), 0.0) + 1.0 / n
        ps = {v: sum(p for (s, _), p in joint.items() if s == v) for v in (0, 1)}
        pd = {v: sum(p for (_, d), p in joint.items() if d == v) for v in (0, 1)}
        mi = 0.0
        for (s, d), p in joint.items():
            if p > 0 and ps[s] > 0 and pd[d] > 0:
                mi += p * math.log2(p / (ps[s] * pd[d]))
        return max(0.0, mi)

    def __repr__(self) -> str:
        return (f"CovertChannelResult(accuracy={self.accuracy:.2f}, "
                f"MI={self.mutual_information():.3f} bits)")


def _setup(protected: bool,
           backend: str = "compiled") -> Tuple[AcceleratorDriver, int, int]:
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel, backend=backend)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    if protected:
        drv.allocate_slot(1, alice)
        drv.allocate_slot(2, eve)
    drv.load_key(alice, 1, 0x11111111222222223333333344444444)
    drv.load_key(eve, 2, 0x55555555666666667777777788888888)
    return drv, alice, eve


def _send_bit(drv: AcceleratorDriver, alice: int, eve: int, bit: int,
              stall_cycles: int = 12) -> int:
    """Transmit one bit; returns Eve's observed probe latency in cycles.

    The interconnect alternates serving Alice's and Eve's readers; during
    the encoding window Alice's reader withholds readiness iff the bit is
    one.  Eve's probe is identified by the integrity (vouch) nibble of
    the response tag, which survives declassification.
    """
    top = drv.top
    sim = drv.sim
    eve_vouch = eve & 0xF

    # Alice floods the pipe so her blocks are exiting throughout the window
    for i in range(20):
        drv.encrypt(alice, 1, 0xA11CE000 + i)
    # let the first of them reach the pipeline exit
    drv.step(9)

    probe_start = sim.cycle
    drv.encrypt(eve, 2, 0xE7E00001)

    found = None
    cycles = 0
    while found is None and cycles < 300:
        reader = alice if cycles % 2 == 0 else eve
        withhold = bool(bit) and cycles < stall_cycles and reader == alice
        sim.poke(f"{top}.rd_user", reader)
        sim.poke(f"{top}.out_ready", 0 if withhold else 1)
        drv.step()
        cycles += 1
        for r in drv.take_responses():
            if (r.tag & 0xF) == eve_vouch:
                found = r
    # drain any leftovers so the next bit starts clean
    sim.poke(f"{top}.rd_user", alice)
    sim.poke(f"{top}.out_ready", 1)
    drv.step(120)
    drv.take_responses()
    return (found.cycle - probe_start) if found else 300


#: Public name for harnesses (the leakage campaign) that drive the same
#: two-tenant shared-pipeline scenario with their own probe loop.
setup_channel = _setup


def run_covert_channel(protected: bool, secret_bits: List[int],
                       stall_cycles: int = 12) -> CovertChannelResult:
    """Run the full covert-channel experiment; returns the decoded result."""
    drv, alice, eve = _setup(protected)

    # calibration: observe latency for a known 0 and a known 1
    cal0 = _send_bit(drv, alice, eve, 0, stall_cycles)
    cal1 = _send_bit(drv, alice, eve, 1, stall_cycles)
    threshold = (cal0 + cal1) / 2

    lat0: List[int] = [cal0]
    lat1: List[int] = [cal1]
    decoded: List[int] = []
    for bit in secret_bits:
        lat = _send_bit(drv, alice, eve, bit, stall_cycles)
        (lat1 if bit else lat0).append(lat)
        # Eve decodes against the calibrated threshold; if calibration
        # showed no separation, she can only guess
        if cal1 > cal0:
            decoded.append(1 if lat > threshold else 0)
        else:
            decoded.append(0)
    return CovertChannelResult(secret_bits, decoded, lat0, lat1)
