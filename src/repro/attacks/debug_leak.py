"""Trace-buffer key recovery (Huang & Mishra [10], §2.1/§3.1).

The debug peripheral snapshots the round-1 SubBytes output,
``SubBytes(pt ⊕ k)``.  With a known plaintext that inverts directly:

    k  =  pt ⊕ InvSubBytes(trace_entry)

On the baseline, Eve (an unprivileged user) first *enables* tracing by
writing the configuration register — which nothing stops — then waits
for Alice's encryption and reads the trace through the debug port: full
128-bit key recovery from one entry.

On the protected design both steps fail independently: the config write
is supervisor-gated, and even with tracing enabled (by the supervisor)
the readout is label-checked, so Eve reads zeros and the ``blocked``
counter ticks.
"""

from __future__ import annotations

from typing import Optional

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import user_label
from ..accel.config_regs import CFG_FEATURES, FEATURE_DEBUG_EN, FEATURE_OUTBUF_EN
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected
from ..aes import block_to_state, inv_sub_bytes, state_to_block

ALICE_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
KNOWN_PLAINTEXT = 0x00112233445566778899AABBCCDDEEFF


class DebugLeakResult:
    def __init__(self, trace_entry: int, recovered_key: Optional[int],
                 cfg_after: int, blocked_count: int):
        self.trace_entry = trace_entry
        self.recovered_key = recovered_key
        self.cfg_after = cfg_after
        self.blocked_count = blocked_count

    @property
    def key_recovered(self) -> bool:
        return self.recovered_key == ALICE_KEY

    def __repr__(self) -> str:
        return (f"DebugLeakResult(key_recovered={self.key_recovered}, "
                f"blocked={self.blocked_count})")


def invert_round1_trace(trace_entry: int, plaintext: int) -> int:
    """Recover the key from a round-1 SubBytes snapshot."""
    state = block_to_state(trace_entry)
    pre_sub = state_to_block(inv_sub_bytes(state))
    return pre_sub ^ plaintext


def run_debug_leak(protected: bool) -> DebugLeakResult:
    """Eve enables tracing, Alice encrypts, Eve reads the trace."""
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    drv = AcceleratorDriver(accel)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()

    if protected:
        drv.allocate_slot(1, alice)
    drv.load_key(alice, 1, ALICE_KEY)

    # step 1: Eve switches the debug trace on via the config register
    drv.write_config(eve, CFG_FEATURES, FEATURE_OUTBUF_EN | FEATURE_DEBUG_EN)
    cfg_after = drv.read_config(CFG_FEATURES)

    # step 2: Alice encrypts a block Eve knows (e.g. a protocol header)
    drv.set_reader(alice)
    drv.encrypt_blocking(alice, 1, KNOWN_PLAINTEXT, max_cycles=60)

    # step 3: Eve reads the freshest trace entries and inverts round 1
    recovered = None
    trace_seen = 0
    for entry in range(16):
        word = drv.read_debug(eve, entry)
        if word == 0:
            continue
        trace_seen = word
        candidate = invert_round1_trace(word, KNOWN_PLAINTEXT)
        if candidate == ALICE_KEY:
            recovered = candidate
            break

    blocked = drv.counters().get("blocked_count", 0)
    return DebugLeakResult(trace_seen, recovered, cfg_after, blocked)
