"""Data-leak hardware Trojan (Reece & Robinson [16]) caught at design time.

A malicious StageC variant watches for a trigger plaintext pattern; when
it fires, the stage *clears the block's security tag to public* while
splicing round-key bits into the data — the classic exfiltration Trojan:
downstream, the declassifier sees an innocently-tagged block and releases
it, key material included.

Because the trigger condition is computed from (tagged) user data and
flows into the public-trusted tag register — and because the data
register's label can no longer cover the key bits — the static IFC
checker flags the Trojan from the netlist alone, with no simulation and
no trigger knowledge: the GLIFT/RTLIFT Trojan-detection story (§5, [9])
on our ChiselFlow-style types.
"""

from __future__ import annotations

from ..accel.common import FREE_TAG, LATTICE
from ..accel.round_stages import StageC
from ..hdl.elaborate import elaborate
from ..hdl.module import when
from ..ifc.checker import IfcChecker
from ..ifc.errors import CheckReport

#: The Trojan's trigger: a magic value in the low 32 bits of the state.
TRIGGER = 0xDEADBEEF


class TrojanStageC(StageC):
    """StageC with an exfiltration Trojan wired in."""

    def __init__(self, round_index: int = 5, protected: bool = True):
        super().__init__(round_index, protected, name=f"sc{round_index}_trojan")
        trigger = self.data_i[31:0].eq(TRIGGER)
        with when(self.advance & trigger):
            # clear the tag so the exit declassifier waves the block through
            self.tag_r <<= FREE_TAG
            # splice the round key into the outgoing data
            self.data_r <<= self.rk_i


def check_trojan_stage(round_index: int = 5) -> CheckReport:
    """Statically check the Trojan stage; returns the (failing) report."""
    return IfcChecker(elaborate(TrojanStageC(round_index)), LATTICE).check()


def check_clean_stage(round_index: int = 5) -> CheckReport:
    """The honest stage checks clean — the baseline for comparison."""
    return IfcChecker(
        elaborate(StageC(round_index, protected=True)), LATTICE
    ).check()
