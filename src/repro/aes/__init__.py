"""repro.aes — software reference AES (FIPS-197), the golden model."""

from .cipher import (
    block_to_bytes,
    bytes_to_block,
    decrypt_block,
    encrypt_block,
    encrypt_round_states,
)
from .constants import BLOCK_BITS, BLOCK_BYTES, INV_SBOX, RCON, ROUNDS_BY_KEY_BITS, SBOX
from .gf import ginv, gmul, gpow, sbox_from_first_principles, xtime
from .key_schedule import expand_key, key_bytes_from_int, round_key_as_int
from .modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    ecb_decrypt,
    ecb_encrypt,
    pad_pkcs7,
    unpad_pkcs7,
)
from .rounds import (
    add_round_key,
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)

__all__ = [
    "BLOCK_BITS",
    "BLOCK_BYTES",
    "INV_SBOX",
    "RCON",
    "ROUNDS_BY_KEY_BITS",
    "SBOX",
    "add_round_key",
    "block_to_bytes",
    "block_to_state",
    "bytes_to_block",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_crypt",
    "decrypt_block",
    "ecb_decrypt",
    "ecb_encrypt",
    "encrypt_block",
    "encrypt_round_states",
    "expand_key",
    "ginv",
    "gmul",
    "gpow",
    "inv_mix_columns",
    "inv_shift_rows",
    "inv_sub_bytes",
    "key_bytes_from_int",
    "mix_columns",
    "pad_pkcs7",
    "round_key_as_int",
    "sbox_from_first_principles",
    "shift_rows",
    "state_to_block",
    "sub_bytes",
    "unpad_pkcs7",
    "xtime",
]
