"""Block-cipher modes (ECB/CBC/CTR) over the reference cipher.

Used by the example applications to process realistic multi-block
messages (SP 800-38A semantics; CTR uses a 128-bit big-endian counter).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .cipher import decrypt_block, encrypt_block

BlockFn = Callable[[int], int]


def _chunk_blocks(data: bytes) -> List[int]:
    if len(data) % 16 != 0:
        raise ValueError("data length must be a multiple of 16 bytes "
                         "(apply padding first)")
    return [int.from_bytes(data[i:i + 16], "big") for i in range(0, len(data), 16)]


def _join_blocks(blocks: Sequence[int]) -> bytes:
    return b"".join(b.to_bytes(16, "big") for b in blocks)


def pad_pkcs7(data: bytes) -> bytes:
    pad = 16 - (len(data) % 16)
    return data + bytes([pad]) * pad


def unpad_pkcs7(data: bytes) -> bytes:
    if not data or len(data) % 16 != 0:
        raise ValueError("invalid padded data")
    pad = data[-1]
    if not 1 <= pad <= 16 or data[-pad:] != bytes([pad]) * pad:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad]


def ecb_encrypt(data: bytes, key: int, key_bits: int = 128) -> bytes:
    return _join_blocks(encrypt_block(b, key, key_bits) for b in _chunk_blocks(data))


def ecb_decrypt(data: bytes, key: int, key_bits: int = 128) -> bytes:
    return _join_blocks(decrypt_block(b, key, key_bits) for b in _chunk_blocks(data))


def cbc_encrypt(data: bytes, key: int, iv: int, key_bits: int = 128) -> bytes:
    out: List[int] = []
    prev = iv
    for block in _chunk_blocks(data):
        prev = encrypt_block(block ^ prev, key, key_bits)
        out.append(prev)
    return _join_blocks(out)


def cbc_decrypt(data: bytes, key: int, iv: int, key_bits: int = 128) -> bytes:
    out: List[int] = []
    prev = iv
    for block in _chunk_blocks(data):
        out.append(decrypt_block(block, key, key_bits) ^ prev)
        prev = block
    return _join_blocks(out)


def ctr_keystream(key: int, nonce: int, blocks: int, key_bits: int = 128) -> List[int]:
    return [
        encrypt_block((nonce + i) & ((1 << 128) - 1), key, key_bits)
        for i in range(blocks)
    ]


def ctr_crypt(data: bytes, key: int, nonce: int, key_bits: int = 128) -> bytes:
    """CTR mode; encryption and decryption are the same operation.

    Unlike ECB/CBC, partial final blocks are allowed.
    """
    full = len(data) // 16
    rem = len(data) % 16
    stream = ctr_keystream(key, nonce, full + (1 if rem else 0), key_bits)
    out = bytearray()
    for i in range(full):
        block = int.from_bytes(data[16 * i:16 * i + 16], "big") ^ stream[i]
        out += block.to_bytes(16, "big")
    if rem:
        ks = stream[full].to_bytes(16, "big")[:rem]
        tail = bytes(a ^ b for a, b in zip(data[16 * full:], ks))
        out += tail
    return bytes(out)
