"""AES block cipher (FIPS-197) — the golden reference model.

Every hardware experiment differentially tests the accelerator pipeline
against :func:`encrypt_block` / :func:`decrypt_block`.
"""

from __future__ import annotations

from typing import List, Sequence

from .constants import ROUNDS_BY_KEY_BITS
from .key_schedule import expand_key
from .rounds import (
    add_round_key,
    block_to_state,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)


def _rounds_for(key_bits: int) -> int:
    if key_bits not in ROUNDS_BY_KEY_BITS:
        raise ValueError(
            f"key size must be one of {sorted(ROUNDS_BY_KEY_BITS)}, "
            f"got {key_bits}"
        )
    return ROUNDS_BY_KEY_BITS[key_bits]


def encrypt_block(plaintext: int, key: int, key_bits: int = 128) -> int:
    """Encrypt one 128-bit block; ints are big-endian byte order."""
    rounds = _rounds_for(key_bits)
    round_keys = expand_key(key, key_bits)
    state = add_round_key(block_to_state(plaintext), round_keys[0])
    for r in range(1, rounds):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[r])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[rounds])
    return state_to_block(state)


def decrypt_block(ciphertext: int, key: int, key_bits: int = 128) -> int:
    """Decrypt one 128-bit block (straight inverse cipher, FIPS-197 §5.3)."""
    rounds = _rounds_for(key_bits)
    round_keys = expand_key(key, key_bits)
    state = add_round_key(block_to_state(ciphertext), round_keys[rounds])
    for r in range(rounds - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, round_keys[r])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_keys[0])
    return state_to_block(state)


def encrypt_round_states(plaintext: int, key: int,
                         key_bits: int = 128) -> List[int]:
    """All intermediate states (after each round), as 128-bit ints.

    Index 0 is the state after the initial AddRoundKey; index ``Nr`` is
    the ciphertext.  Used by the debug-peripheral attack reproduction,
    which recovers the key from a disclosed intermediate state.
    """
    rounds = _rounds_for(key_bits)
    round_keys = expand_key(key, key_bits)
    states: List[int] = []
    state = add_round_key(block_to_state(plaintext), round_keys[0])
    states.append(state_to_block(state))
    for r in range(1, rounds):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[r])
        states.append(state_to_block(state))
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[rounds])
    states.append(state_to_block(state))
    return states


def bytes_to_block(data: Sequence[int]) -> int:
    if len(data) != 16:
        raise ValueError("block must be 16 bytes")
    value = 0
    for b in data:
        value = (value << 8) | (b & 0xFF)
    return value


def block_to_bytes(block: int) -> List[int]:
    return [(block >> (8 * (15 - i))) & 0xFF for i in range(16)]
