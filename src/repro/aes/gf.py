"""GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1.

These primitives are used three ways: by the software reference cipher,
by the S-box self-derivation test, and by the hardware round-stage
generators in :mod:`repro.accel`, which build the same constant
multiplications as xor/shift expression trees.
"""

from __future__ import annotations

AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= AES_POLY
    return a & 0xFF


def gmul(a: int, b: int) -> int:
    """General multiplication in GF(2^8) (peasant's algorithm)."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def gpow(a: int, n: int) -> int:
    """Exponentiation in GF(2^8)."""
    result = 1
    base = a & 0xFF
    while n:
        if n & 1:
            result = gmul(result, base)
        base = gmul(base, base)
        n >>= 1
    return result


def ginv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inv(0) is defined as 0 (AES)."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^254 = a^-1.
    return gpow(a, 254)


def affine_transform(a: int) -> int:
    """The AES S-box affine map over GF(2): b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63."""
    result = 0
    for i in range(8):
        bit = (
            (a >> i)
            ^ (a >> ((i + 4) % 8))
            ^ (a >> ((i + 5) % 8))
            ^ (a >> ((i + 6) % 8))
            ^ (a >> ((i + 7) % 8))
            ^ (0x63 >> i)
        ) & 1
        result |= bit << i
    return result


def sbox_from_first_principles(a: int) -> int:
    """S-box entry computed as affine(inverse(a)) — used to validate tables."""
    return affine_transform(ginv(a))
