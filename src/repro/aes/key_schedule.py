"""AES key expansion (FIPS-197 §5.2) for 128/192/256-bit keys."""

from __future__ import annotations

from typing import List, Sequence

from .constants import RCON, ROUNDS_BY_KEY_BITS, SBOX

Word = List[int]  # four bytes


def _sub_word(word: Sequence[int]) -> Word:
    return [SBOX[b] for b in word]


def _rot_word(word: Sequence[int]) -> Word:
    return list(word[1:]) + [word[0]]


def _xor_words(a: Sequence[int], b: Sequence[int]) -> Word:
    return [x ^ y for x, y in zip(a, b)]


def key_bytes_from_int(key: int, key_bits: int) -> List[int]:
    if key_bits not in ROUNDS_BY_KEY_BITS:
        raise ValueError(f"key size must be one of {sorted(ROUNDS_BY_KEY_BITS)}")
    if not 0 <= key < (1 << key_bits):
        raise ValueError(f"key does not fit in {key_bits} bits")
    n = key_bits // 8
    return [(key >> (8 * (n - 1 - i))) & 0xFF for i in range(n)]


def expand_key(key: int, key_bits: int = 128) -> List[List[int]]:
    """Expand ``key`` into ``Nr + 1`` round keys of 16 bytes each."""
    rounds = ROUNDS_BY_KEY_BITS[key_bits]
    nk = key_bits // 32
    key_bytes = key_bytes_from_int(key, key_bits)

    words: List[Word] = [key_bytes[4 * i:4 * i + 4] for i in range(nk)]
    total_words = 4 * (rounds + 1)
    for i in range(nk, total_words):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = _xor_words(_sub_word(_rot_word(temp)), [RCON[i // nk], 0, 0, 0])
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append(_xor_words(words[i - nk], temp))

    round_keys: List[List[int]] = []
    for r in range(rounds + 1):
        rk: List[int] = []
        for w in words[4 * r:4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def round_key_as_int(round_key: Sequence[int]) -> int:
    value = 0
    for b in round_key:
        value = (value << 8) | (b & 0xFF)
    return value
