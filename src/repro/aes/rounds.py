"""AES round transformations (FIPS-197 §5) and their inverses.

State representation: a list of 16 byte values in FIPS column-major
order — ``state[r + 4*c]`` is row ``r``, column ``c``.  A 128-bit block
``b0 b1 ... b15`` (``b0`` first on the wire) maps to ``state[i] = b_i``.
"""

from __future__ import annotations

from typing import List, Sequence

from .constants import BLOCK_BYTES, INV_SBOX, SBOX
from .gf import gmul

State = List[int]


def _check_state(state: Sequence[int]) -> None:
    if len(state) != BLOCK_BYTES:
        raise ValueError(f"state must have {BLOCK_BYTES} bytes")


def sub_bytes(state: Sequence[int]) -> State:
    _check_state(state)
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: Sequence[int]) -> State:
    _check_state(state)
    return [INV_SBOX[b] for b in state]


def shift_rows(state: Sequence[int]) -> State:
    """Row r rotates left by r positions."""
    _check_state(state)
    out = [0] * BLOCK_BYTES
    for r in range(4):
        for c in range(4):
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)]
    return out


def inv_shift_rows(state: Sequence[int]) -> State:
    """Row r rotates right by r positions."""
    _check_state(state)
    out = [0] * BLOCK_BYTES
    for r in range(4):
        for c in range(4):
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c]
    return out


def mix_columns(state: Sequence[int]) -> State:
    _check_state(state)
    out = [0] * BLOCK_BYTES
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        out[4 * c + 0] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3]
        out[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3]
        out[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3)
        out[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2)
    return out


def inv_mix_columns(state: Sequence[int]) -> State:
    _check_state(state)
    out = [0] * BLOCK_BYTES
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        out[4 * c + 0] = (gmul(col[0], 14) ^ gmul(col[1], 11)
                          ^ gmul(col[2], 13) ^ gmul(col[3], 9))
        out[4 * c + 1] = (gmul(col[0], 9) ^ gmul(col[1], 14)
                          ^ gmul(col[2], 11) ^ gmul(col[3], 13))
        out[4 * c + 2] = (gmul(col[0], 13) ^ gmul(col[1], 9)
                          ^ gmul(col[2], 14) ^ gmul(col[3], 11))
        out[4 * c + 3] = (gmul(col[0], 11) ^ gmul(col[1], 13)
                          ^ gmul(col[2], 9) ^ gmul(col[3], 14))
    return out


def add_round_key(state: Sequence[int], round_key: Sequence[int]) -> State:
    _check_state(state)
    _check_state(round_key)
    return [s ^ k for s, k in zip(state, round_key)]


def block_to_state(block: int) -> State:
    """128-bit int (big-endian byte order) → 16-byte state list."""
    if not 0 <= block < (1 << 128):
        raise ValueError("block must be a 128-bit value")
    return [(block >> (8 * (15 - i))) & 0xFF for i in range(16)]


def state_to_block(state: Sequence[int]) -> int:
    _check_state(state)
    block = 0
    for b in state:
        block = (block << 8) | (b & 0xFF)
    return block
