"""Drivers for the paper's figures (3, 5, 6, 7, 8) — each returns the
data its benchmark prints and its tests assert on."""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..accel.common import LATTICE
from ..accel.key_expand_unit import KeyExpandUnit
from ..accel.mini import MiniTaggedPipeline
from ..attacks.buffer_overflow import OverflowResult, run_overflow_attack
from ..attacks.timing_channel import CovertChannelResult, run_covert_channel
from ..hdl.elaborate import elaborate
from ..ifc.checker import IfcChecker
from ..ifc.errors import CheckReport
from ..ifc.lattice import two_point
from ..soc.cache_tags import CacheTags
from ..soc.requests import mixed_workload
from ..soc.system import SoCSystem


# ---------------------------------------------------------------- Fig. 3
def fig3_cache_tags() -> Tuple[CheckReport, CheckReport]:
    """Type-check the Fig. 3 module: correct variant passes, cross-way
    write fails with the dependent-label error."""
    lattice = two_point()
    good = IfcChecker(elaborate(CacheTags(lattice)), lattice).check()
    bad = IfcChecker(elaborate(CacheTags(two_point(), broken=True)),
                     two_point()).check()
    return good, bad


# ---------------------------------------------------------------- Fig. 5
def fig5_scratchpad() -> Dict[str, OverflowResult]:
    """The key-scratchpad overrun on both designs."""
    return {
        "baseline": run_overflow_attack(False),
        "protected": run_overflow_attack(True),
    }


# ---------------------------------------------------------------- Fig. 6
def fig6_label_error() -> Tuple[CheckReport, CheckReport]:
    """The timing-channel label error: the flawed key-expansion unit is
    flagged on its public timing signals; the fixed unit checks clean."""
    flawed = IfcChecker(
        elaborate(KeyExpandUnit(protected=True, timing_flaw=True)), LATTICE
    ).check()
    fixed = IfcChecker(
        elaborate(KeyExpandUnit(protected=True, timing_flaw=False)), LATTICE
    ).check()
    return flawed, fixed


# ---------------------------------------------------------------- Fig. 7
class SharingResult:
    """Fine-grained vs coarse-grained sharing of the pipeline."""

    def __init__(self, fine_cycles: int, coarse_cycles: int,
                 blocks: int, users: int, all_correct: bool):
        self.fine_cycles = fine_cycles
        self.coarse_cycles = coarse_cycles
        self.blocks = blocks
        self.users = users
        self.all_correct = all_correct

    @property
    def speedup(self) -> float:
        return self.coarse_cycles / self.fine_cycles

    def __repr__(self) -> str:
        return (f"SharingResult(fine={self.fine_cycles}cyc, "
                f"coarse={self.coarse_cycles}cyc, "
                f"speedup={self.speedup:.1f}x, correct={self.all_correct})")


def fig7_sharing(blocks_per_user: int = 8) -> SharingResult:
    """Interleave two users' blocks back-to-back (fine-grained, tags in
    flight) and compare with coarse-grained sharing, where the pipeline
    drains between users (the paper's intro: "the entire pipeline must be
    drained and refilled when switching users")."""
    from ..aes import encrypt_block

    soc = SoCSystem(protected=True)
    soc.provision_keys()
    start = soc.driver.sim.cycle
    wl = mixed_workload([("alice", 1), ("bob", 2)], blocks_per_user, seed=7)
    soc.submit_all(wl)
    soc.drain()
    fine_cycles = soc.driver.sim.cycle - start

    correct = True
    for name in ("alice", "bob"):
        for req in soc.results_for(name):
            key = soc.principals[req.user].key
            if req.user != name or req.result != encrypt_block(req.data, key):
                correct = False

    # coarse-grained model: one user at a time, drain (30 cycles) between
    # user switches; same interleaved arrival order means a switch per block
    switches = 2 * blocks_per_user - 1
    coarse_cycles = 2 * blocks_per_user + switches * 30 + 30
    return SharingResult(fine_cycles, coarse_cycles, 2 * blocks_per_user, 2,
                         correct)


# ---------------------------------------------------------------- Fig. 8
def fig8_static() -> Tuple[CheckReport, CheckReport]:
    """Static half: the guarded mini composition verifies with no
    downgrade on the data path; the unguarded one fails."""
    guarded = IfcChecker(
        elaborate(MiniTaggedPipeline(3, guarded=True)), LATTICE,
        max_hypotheses=1 << 20,
    ).check()
    unguarded = IfcChecker(
        elaborate(MiniTaggedPipeline(3, guarded=False)), LATTICE,
        max_hypotheses=1 << 20,
    ).check()
    return guarded, unguarded


def fig8_dynamic(bits: int = 16, seed: int = 3) -> Dict[str, CovertChannelResult]:
    """Dynamic half: the stall covert channel, decoded on the baseline and
    flat on the protected design."""
    rng = random.Random(seed)
    secret = [rng.randint(0, 1) for _ in range(bits)]
    return {
        "baseline": run_covert_channel(False, secret, stall_cycles=16),
        "protected": run_covert_channel(True, secret, stall_cycles=16),
    }
