"""The design-time audit (§4, "All previously-mentioned vulnerabilities
in the baseline are flagged by ChiselFlow").

The auditor attaches the deployment's intended labels to the *baseline*
accelerator — master key ``(⊤,⊤)``, per-user key slots, user-tagged
request data, ``(⊥,⊤)`` configuration, public host ports — and runs the
static checker on the flat netlist.  Every §3.1 vulnerability class
surfaces as one or more label errors at a distinct sink, with no
simulation and no attack knowledge.

The same annotation applied to the protected design yields a clean
report modulo the explicitly reviewed downgrades — the "~70 changed
lines" story: we also count the protection mechanisms (annotations,
guards, downgrades, tag state) as the design-effort metric.
"""

from __future__ import annotations

from typing import Dict, List

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import (
    LATTICE,
    VALID_REQUEST_TAGS,
    master_key_label,
    user_label,
)
from ..accel.taglabels import data_label
from ..hdl.elaborate import elaborate
from ..ifc.checker import IfcChecker
from ..ifc.dependent import CellTagLabel, DependentLabel
from ..ifc.errors import CheckReport
from ..ifc.label import Label

PUB_TRUSTED = Label(LATTICE, "public", "trusted")

#: deployment scenario: slot 0 master, slots 1..3 owned by p0..p2
SLOT_OWNERS = [master_key_label(), user_label("p0"), user_label("p1"),
               user_label("p2")]


def annotate_baseline(accel: AesAcceleratorBaseline) -> List[str]:
    """Attach the intended labels to an (unlabelled) baseline instance.

    Returns a human-readable list of the annotations applied.
    """
    notes = []

    accel.in_data.label = data_label(accel.in_user,
                                     domain=VALID_REQUEST_TAGS)
    notes.append("in_data: DL(in_user) — request data is the requester's")

    accel.out_data.label = PUB_TRUSTED
    notes.append("out_data: (⊥,⊤) — the output port is a public channel")
    accel.dbg_data.label = PUB_TRUSTED
    notes.append("dbg_data: (⊥,⊤) — the debug port is a public channel")
    accel.in_ready.label = PUB_TRUSTED
    notes.append("in_ready: (⊥,⊤) — request timing is observable by all")

    for reg in accel.cfg.regs:
        reg.label = PUB_TRUSTED
    notes.append("config registers: (⊥,⊤) — readable by all, supervisor-write")

    cells = accel.scratchpad.cells
    cell_labels = []
    for cell in range(cells.depth):
        cell_labels.append(SLOT_OWNERS[cell // 2])
    cells.cell_labels = cell_labels
    notes.append("scratchpad cells: per-slot owner labels (slot 0 = (⊤,⊤))")

    for s, mem in enumerate(accel.pipe.keyexp.rk_mems):
        mem.label = SLOT_OWNERS[s]
    notes.append("round-key RAMs: per-slot owner labels")

    accel.pipe.keyexp.busy.label = PUB_TRUSTED
    accel.pipe.keyexp.ready.label = PUB_TRUSTED
    notes.append("key-expansion busy/ready: (⊥,⊤) — public timing")

    return notes


def classify_errors(report: CheckReport) -> Dict[str, List[str]]:
    """Group the audit's label errors into the §3.1 vulnerability classes."""
    classes: Dict[str, List[str]] = {
        "debug disclosure": [],
        "output disclosure": [],
        "config tampering": [],
        "scratchpad overrun": [],
        "round-key tampering": [],
        "timing channel": [],
        "other": [],
    }
    for err in report.errors:
        sink = err.sink
        if "dbg_data" in sink or "debug" in sink:
            classes["debug disclosure"].append(repr(err))
        elif "out_data" in sink:
            classes["output disclosure"].append(repr(err))
        elif ".cfg." in sink or sink.endswith(tuple(f"r{i}" for i in range(4))):
            classes["config tampering"].append(repr(err))
        elif "scratchpad" in sink:
            classes["scratchpad overrun"].append(repr(err))
        elif "rk_mem" in sink:
            classes["round-key tampering"].append(repr(err))
        elif "busy" in sink or "ready" in sink or "valid" in sink:
            classes["timing channel"].append(repr(err))
        else:
            classes["other"].append(repr(err))
    return {k: v for k, v in classes.items() if v}


def run_audit(timing_flaw: bool = True,
              max_hypotheses: int = 1 << 16) -> CheckReport:
    """Annotate and statically check the baseline; returns the report."""
    accel = AesAcceleratorBaseline(keyexp_timing_flaw=timing_flaw)
    annotate_baseline(accel)
    netlist = elaborate(accel)
    return IfcChecker(netlist, LATTICE, max_hypotheses=max_hypotheses).check()


def protection_effort() -> Dict[str, int]:
    """Count the protection mechanisms in the two designs (the paper's
    "~70 changed lines" metric, as netlist-level facts)."""
    from ..accel.protected import AesAcceleratorProtected

    base = elaborate(AesAcceleratorBaseline())
    prot = elaborate(AesAcceleratorProtected())

    def facts(nl):
        labelled = sum(1 for s in nl.signals if s.label is not None)
        dependent = sum(
            1 for s in nl.signals if isinstance(s.label, DependentLabel)
        )
        tagged_mems = sum(
            1 for m in nl.mems
            if isinstance(m.label, (CellTagLabel, DependentLabel))
            or m.meta.get("tag_role")
        )
        downgrades = sum(1 for n in nl.all_nodes() if n.kind == "downgrade")
        return labelled, dependent, tagged_mems, downgrades

    bl, bd, bt, bdg = facts(base)
    pl, pd, pt, pdg = facts(prot)
    return {
        "labelled_signals_added": pl - bl,
        "dependent_labels": pd,
        "tagged_memories": pt,
        "downgrade_sites": pdg,
        "extra_registers": len(prot.regs) - len(base.regs),
        "extra_register_bits": (
            sum(r.width for r in prot.regs) - sum(r.width for r in base.regs)
        ),
    }
