"""repro.eval — drivers that regenerate every table and figure."""

from .audit import annotate_baseline, classify_errors, protection_effort, run_audit
from .figures import (
    SharingResult,
    fig3_cache_tags,
    fig5_scratchpad,
    fig6_label_error,
    fig7_sharing,
    fig8_dynamic,
    fig8_static,
)
from .table1 import render_table1, run_table1
from .table2 import ThroughputResult, measure_throughput, run_table2
from .runner import run_all
from .sweeps import (
    ContentionPoint,
    LanePairResult,
    contention_sweep,
    covert_bandwidth,
    lane_noninterference_sweep,
)

__all__ = [
    "SharingResult",
    "ThroughputResult",
    "ContentionPoint",
    "LanePairResult",
    "annotate_baseline",
    "classify_errors",
    "fig3_cache_tags",
    "fig5_scratchpad",
    "fig6_label_error",
    "fig7_sharing",
    "fig8_dynamic",
    "fig8_static",
    "measure_throughput",
    "protection_effort",
    "render_table1",
    "run_all",
    "run_audit",
    "run_table1",
    "run_table2",
    "contention_sweep",
    "covert_bandwidth",
    "lane_noninterference_sweep",
]
