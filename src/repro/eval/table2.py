"""Table 2 — area/performance of baseline vs protected, plus the §4
throughput claim (one block per cycle, 30-cycle latency, 51.2 Gbps at
400 MHz for the paper's prototype; ours scales by the modelled Fmax)."""

from __future__ import annotations

from typing import Dict

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import user_label
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected
from ..aes import encrypt_block
from ..fpga.report import Table2Row, render_table2, table2
from ..fpga.timing import fmax_mhz
from ..hdl.elaborate import elaborate


def run_table2() -> Dict[str, Table2Row]:
    baseline = elaborate(AesAcceleratorBaseline())
    protected = elaborate(AesAcceleratorProtected())
    return table2(baseline, protected)


class ThroughputResult:
    """Measured pipeline characteristics (§4's performance paragraph)."""

    def __init__(self, blocks: int, issue_cycles: int, latency: int,
                 fmax: float, all_correct: bool):
        self.blocks = blocks
        self.issue_cycles = issue_cycles
        self.latency = latency
        self.fmax = fmax
        self.all_correct = all_correct

    @property
    def blocks_per_cycle(self) -> float:
        return self.blocks / self.issue_cycles

    @property
    def gbps(self) -> float:
        return 128.0 * self.blocks_per_cycle * self.fmax / 1000.0

    def __repr__(self) -> str:
        return (f"ThroughputResult({self.blocks_per_cycle:.2f} blk/cyc, "
                f"latency={self.latency}, {self.gbps:.1f} Gbps @ "
                f"{self.fmax:.0f} MHz, correct={self.all_correct})")


def measure_throughput(protected: bool = True,
                       blocks: int = 64) -> ThroughputResult:
    """Stream ``blocks`` back-to-back; measure issue rate and latency."""
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    fmax = fmax_mhz(elaborate(
        AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    ))
    drv = AcceleratorDriver(accel)
    alice = user_label("p0").encode()
    if protected:
        drv.allocate_slot(1, alice)
    key = 0x000102030405060708090A0B0C0D0E0F
    drv.load_key(alice, 1, key)
    drv.set_reader(alice)

    pts = [(0x1234567890ABCDEF << 64) | i for i in range(blocks)]
    first_issue = drv.sim.cycle
    first_out = None
    for pt in pts:
        drv.encrypt(alice, 1, pt)
    issue_cycles = drv.sim.cycle - first_issue

    drv.step(40 + blocks)
    outs = [r for r in drv.take_responses()]
    latency = outs[0].cycle - first_issue if outs else -1
    want = [encrypt_block(pt, key) for pt in pts]
    got = [r.data for r in outs]
    return ThroughputResult(blocks, issue_cycles, latency, fmax,
                            got == want)


def render_report() -> str:
    rows = run_table2()
    lines = [render_table2(rows), ""]
    for prot in (False, True):
        t = measure_throughput(prot)
        name = "protected" if prot else "baseline"
        lines.append(
            f"{name}: {t.blocks_per_cycle:.2f} blocks/cycle, "
            f"{t.latency}-cycle latency, {t.gbps:.1f} Gbps @ "
            f"{t.fmax:.0f} MHz (paper: 1 block/cycle, 30 cycles, "
            f"51.2 Gbps @ 400 MHz)"
        )
    return "\n".join(lines)
