"""The canonical list of protected modules and their check modes —
shared by the verification-cost benchmark, the EXPERIMENTS runner, and
the consolidated test."""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..accel.axi import AxiLiteFrontend
from ..accel.common import LATTICE
from ..accel.config_regs import ConfigRegs
from ..accel.debug import DebugPeripheral
from ..accel.declassifier import Declassifier
from ..accel.key_expand_unit import KeyExpandUnit
from ..accel.output_buffer import OutputBuffer
from ..accel.pipeline import AesPipeline
from ..accel.protected import AesAcceleratorProtected
from ..accel.round_stages import StageA, StageB, StageC
from ..accel.scratchpad import KeyScratchpad
from ..accel.stall import StallController
from ..hdl.elaborate import elaborate, elaborate_shallow
from ..ifc.checker import IfcChecker
from ..ifc.errors import CheckReport

MODULES: List[Tuple[str, Callable, Callable]] = [
    ("StageA", lambda: StageA(1, True), elaborate),
    ("StageB", lambda: StageB(10, True), elaborate),
    ("StageC", lambda: StageC(5, True), elaborate),
    ("KeyExpandUnit", lambda: KeyExpandUnit(True), elaborate),
    ("KeyScratchpad", lambda: KeyScratchpad(True), elaborate),
    ("OutputBuffer", lambda: OutputBuffer(True), elaborate),
    ("ConfigRegs", lambda: ConfigRegs(True), elaborate),
    ("DebugPeripheral", lambda: DebugPeripheral(True), elaborate),
    ("Declassifier", lambda: Declassifier(True), elaborate),
    ("StallController", lambda: StallController(30, True), elaborate),
    ("AesPipeline (modular)", lambda: AesPipeline(True), elaborate_shallow),
    ("Top (modular)", AesAcceleratorProtected, elaborate_shallow),
    ("AXI bridge (modular)", AxiLiteFrontend, elaborate_shallow),
]


def check_all() -> List[Tuple[str, CheckReport]]:
    """Check every module; returns (name, report) pairs."""
    results = []
    for name, build, elab in MODULES:
        report = IfcChecker(elab(build()), LATTICE,
                            max_hypotheses=1 << 20).check()
        results.append((name, report))
    return results
