"""Parameter sweeps around the headline numbers.

* :func:`contention_sweep` — throughput and latency as 1..3 users share
  the pipeline (the fine-grained-sharing claim under load);
* :func:`covert_bandwidth` — the §3.1 stall channel's capacity in
  bits/second at the modelled clock, for several encoding windows, on
  both designs.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..aes import encrypt_block
from ..attacks.timing_channel import run_covert_channel
from ..fpga.timing import fmax_mhz
from ..hdl.elaborate import elaborate
from ..soc.requests import mixed_workload
from ..soc.system import SoCSystem


class ContentionPoint:
    def __init__(self, users: int, blocks: int, cycles: int,
                 latencies: List[int], correct: bool):
        self.users = users
        self.blocks = blocks
        self.cycles = cycles
        self.latencies = latencies
        self.correct = correct

    @property
    def blocks_per_cycle(self) -> float:
        return self.blocks / self.cycles

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    def __repr__(self) -> str:
        return (f"ContentionPoint(users={self.users}, "
                f"{self.blocks_per_cycle:.2f} blk/cyc, "
                f"latency~{self.mean_latency:.0f})")


def contention_sweep(blocks_per_user: int = 8,
                     seed: int = 5) -> List[ContentionPoint]:
    """Fine-grained sharing under 1, 2, 3 concurrent users."""
    points = []
    tenants_all = [("alice", 1), ("bob", 2), ("charlie", 3)]
    for n in (1, 2, 3):
        soc = SoCSystem(protected=True)
        soc.provision_keys()
        tenants = tenants_all[:n]
        start = soc.driver.sim.cycle
        soc.submit_all(mixed_workload(tenants, blocks_per_user, seed=seed))
        soc.drain()
        cycles = soc.driver.sim.cycle - start
        latencies, correct = [], True
        for name, _slot in tenants:
            for req in soc.results_for(name):
                latencies.append(req.latency)
                key = soc.principals[req.user].key
                if req.user != name or req.result != encrypt_block(req.data, key):
                    correct = False
        points.append(ContentionPoint(n, n * blocks_per_user, cycles,
                                      latencies, correct))
    return points


def covert_bandwidth(windows=(8, 16, 24), bits: int = 10,
                     seed: int = 21) -> Dict[str, List[dict]]:
    """Channel capacity (bits/s at the modelled clock) per stall window."""
    from ..accel.baseline import AesAcceleratorBaseline

    fmax_hz = fmax_mhz(elaborate(AesAcceleratorBaseline())) * 1e6
    rng = random.Random(seed)
    secret = [rng.randint(0, 1) for _ in range(bits)]

    out: Dict[str, List[dict]] = {"baseline": [], "protected": []}
    for window in windows:
        for name, protected in (("baseline", False), ("protected", True)):
            res = run_covert_channel(protected, secret, stall_cycles=window)
            # cycles consumed per transmitted bit in the experiment's
            # schedule: flood(20) + settle(9) + decode window + drain
            cycles_per_bit = 20 + 9 + window + 120
            bandwidth = (res.mutual_information() * fmax_hz
                         / cycles_per_bit)
            out[name].append({
                "window": window,
                "accuracy": res.accuracy,
                "mi_bits": res.mutual_information(),
                "bandwidth_bps": bandwidth,
            })
    return out
