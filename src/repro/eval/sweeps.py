"""Parameter sweeps around the headline numbers.

* :func:`contention_sweep` — throughput and latency as 1..3 users share
  the pipeline (the fine-grained-sharing claim under load);
* :func:`covert_bandwidth` — the §3.1 stall channel's capacity in
  bits/second at the modelled clock, for several encoding windows, on
  both designs;
* :func:`lane_noninterference_sweep` — the noninterference hyperproperty
  run as *lanes* of the batched simulator: pairs of lanes differ only in
  Alice's secrets, and Eve's per-lane observations must match within
  each pair.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..aes import encrypt_block
from ..attacks.timing_channel import run_covert_channel
from ..fpga.timing import fmax_mhz
from ..hdl.elaborate import elaborate
from ..soc.requests import mixed_workload
from ..soc.system import SoCSystem


class ContentionPoint:
    def __init__(self, users: int, blocks: int, cycles: int,
                 latencies: List[int], correct: bool):
        self.users = users
        self.blocks = blocks
        self.cycles = cycles
        self.latencies = latencies
        self.correct = correct

    @property
    def blocks_per_cycle(self) -> float:
        return self.blocks / self.cycles

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    def __repr__(self) -> str:
        return (f"ContentionPoint(users={self.users}, "
                f"{self.blocks_per_cycle:.2f} blk/cyc, "
                f"latency~{self.mean_latency:.0f})")


def contention_sweep(blocks_per_user: int = 8,
                     seed: int = 5) -> List[ContentionPoint]:
    """Fine-grained sharing under 1, 2, 3 concurrent users."""
    points = []
    tenants_all = [("alice", 1), ("bob", 2), ("charlie", 3)]
    for n in (1, 2, 3):
        soc = SoCSystem(protected=True)
        soc.provision_keys()
        tenants = tenants_all[:n]
        start = soc.driver.sim.cycle
        soc.submit_all(mixed_workload(tenants, blocks_per_user, seed=seed))
        soc.drain()
        cycles = soc.driver.sim.cycle - start
        latencies, correct = [], True
        for name, _slot in tenants:
            for req in soc.results_for(name):
                latencies.append(req.latency)
                key = soc.principals[req.user].key
                if req.user != name or req.result != encrypt_block(req.data, key):
                    correct = False
        points.append(ContentionPoint(n, n * blocks_per_user, cycles,
                                      latencies, correct))
    return points


def covert_bandwidth(windows=(8, 16, 24), bits: int = 10,
                     seed: int = 21) -> Dict[str, List[dict]]:
    """Channel capacity (bits/s at the modelled clock) per stall window."""
    from ..accel.baseline import AesAcceleratorBaseline

    fmax_hz = fmax_mhz(elaborate(AesAcceleratorBaseline())) * 1e6
    rng = random.Random(seed)
    secret = [rng.randint(0, 1) for _ in range(bits)]

    out: Dict[str, List[dict]] = {"baseline": [], "protected": []}
    for window in windows:
        for name, protected in (("baseline", False), ("protected", True)):
            res = run_covert_channel(protected, secret, stall_cycles=window)
            # cycles consumed per transmitted bit in the experiment's
            # schedule: flood(20) + settle(9) + decode window + drain
            cycles_per_bit = 20 + 9 + window + 120
            bandwidth = (res.mutual_information() * fmax_hz
                         / cycles_per_bit)
            out[name].append({
                "window": window,
                "accuracy": res.accuracy,
                "mi_bits": res.mutual_information(),
                "bandwidth_bps": bandwidth,
            })
    return out


class LanePairResult:
    """Eve's view compared across one secret-differing lane pair."""

    def __init__(self, pair: int, lanes, observations: int, equal: bool,
                 first_divergence):
        self.pair = pair
        self.lanes = lanes
        self.observations = observations
        self.equal = equal
        self.first_divergence = first_divergence

    def __repr__(self) -> str:
        verdict = ("identical" if self.equal
                   else f"diverged at observation {self.first_divergence}")
        return (f"LanePairResult(pair={self.pair}, lanes={self.lanes}, "
                f"{self.observations} observations, {verdict})")


def lane_noninterference_sweep(protected: bool = True, pairs: int = 2,
                               cycles: int = 200, stalls: bool = True,
                               seed: int = 7):
    """Noninterference as a batched-lane hyperproperty sweep.

    Runs ``2 * pairs`` lockstep copies of one accelerator in a single
    :class:`~repro.hdl.sim.BatchSimulator`.  Every lane receives the
    identical public schedule (Eve's probes, the reader rota, the stall
    window); each lane gets its *own* Alice key and plaintext stream, so
    the two lanes of a pair differ only in Alice's secrets.  Eve's
    observations — ``out_valid``, ``out_data``, ``in_ready`` and
    ``dbg_data`` on her reader cycles — are recorded per lane and
    compared within each pair.

    On the protected design every pair must be bit- and cycle-identical;
    on the baseline the §3.1 stall scenario makes them diverge.
    Returns one :class:`LanePairResult` per pair.
    """
    from ..accel.baseline import AesAcceleratorBaseline
    from ..accel.common import (
        CMD_CONFIG,
        CMD_ENCRYPT,
        CMD_LOAD_KEY,
        supervisor_label,
        user_label,
    )
    from ..accel.protected import AesAcceleratorProtected
    from ..hdl.sim import BatchSimulator

    lanes = 2 * pairs
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    top = accel.name
    bs = BatchSimulator(elaborate(accel), lanes=lanes)

    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    sup = supervisor_label().encode()
    eve_key = 0xE0E1E2E3E4E5E6E7E8E9EAEBECEDEEEF
    mask64 = (1 << 64) - 1

    rng = random.Random(seed)
    keys = [rng.getrandbits(128) for _ in range(lanes)]
    queues = [[rng.getrandbits(32) for _ in range(20)] for _ in range(lanes)]

    def poke_cmd(cmd, user_tag, slot=0, word=0, addr=0, data=0):
        bs.poke_all(f"{top}.in_valid", 1)
        bs.poke_all(f"{top}.in_cmd", cmd)
        bs.poke_all(f"{top}.in_user", user_tag)
        bs.poke_all(f"{top}.in_slot", slot)
        bs.poke_all(f"{top}.in_word", word)
        bs.poke_all(f"{top}.in_addr", addr)
        bs.poke_all(f"{top}.in_data", data)

    def issue(cmd, user_tag, **kwargs):
        # ``in_ready`` is public state driven by the identical schedule,
        # so lane 0's view of it is every lane's view during setup.
        poke_cmd(cmd, user_tag, **kwargs)
        for _ in range(1000):
            if bs.peek(f"{top}.in_ready", 0):
                break
            bs.step()
        else:
            raise TimeoutError("accelerator never became ready")
        bs.step()
        bs.poke_all(f"{top}.in_valid", 0)

    bs.poke_all(f"{top}.out_ready", 1)
    bs.poke_all(f"{top}.in_valid", 0)

    if protected:
        for slot, owner in ((1, alice), (2, eve)):
            for cell in (2 * slot, 2 * slot + 1):
                issue(CMD_CONFIG, sup, addr=8 + cell, data=owner)
    issue(CMD_LOAD_KEY, alice, slot=1, word=0, data=[k >> 64 for k in keys])
    issue(CMD_LOAD_KEY, alice, slot=1, word=1, data=[k & mask64 for k in keys])
    issue(CMD_LOAD_KEY, eve, slot=2, word=0, data=eve_key >> 64)
    issue(CMD_LOAD_KEY, eve, slot=2, word=1, data=eve_key & mask64)
    bs.step(2)
    for _ in range(64):
        if not bs.peek(f"{top}.pipe.kx_busy", 0):
            break
        bs.step()
    else:
        raise TimeoutError("key expansion did not finish")

    obs = [[] for _ in range(lanes)]
    eve_pending = []
    for t in range(cycles):
        if t in (40, 55, 70):
            eve_pending.append(0xE7E00000 + t)
        reader_is_eve = (t % 2 == 1)
        withhold = (not reader_is_eve) and stalls and t < 60
        bs.poke_all(f"{top}.rd_user", eve if reader_is_eve else alice)
        bs.poke_all(f"{top}.out_ready", 0 if withhold else 1)

        ready = bs.peek(f"{top}.in_ready", 0)
        if eve_pending and ready:
            poke_cmd(CMD_ENCRYPT, eve, slot=2, data=eve_pending.pop(0))
        elif queues[0] and ready:
            poke_cmd(CMD_ENCRYPT, alice, slot=1,
                     data=[q.pop(0) for q in queues])
        else:
            bs.poke_all(f"{top}.in_valid", 0)

        if reader_is_eve:
            ov = bs.peek_all(f"{top}.out_valid")
            od = bs.peek_all(f"{top}.out_data")
            ir = bs.peek_all(f"{top}.in_ready")
            dd = bs.peek_all(f"{top}.dbg_data")
            for ln in range(lanes):
                obs[ln].append((t, ov[ln], od[ln], ir[ln], dd[ln]))
        bs.step()

    results = []
    for p in range(pairs):
        a, b = obs[2 * p], obs[2 * p + 1]
        div = next((i for i, (x, y) in enumerate(zip(a, b)) if x != y), None)
        results.append(LanePairResult(p, (2 * p, 2 * p + 1), len(a),
                                      div is None, div))
    return results
