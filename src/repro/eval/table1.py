"""Table 1 — the six security requirements, exercised end to end.

For each policy row the experiment runs the *legitimate* flow (which
must succeed) and the *forbidden* flow (which must be blocked) on the
protected accelerator, returning one
:class:`~repro.ifc.policy.PolicyCheckResult` per row.  Run against the
baseline, the same scenarios show the forbidden flows succeeding — the
delta is the paper's Table 1 enforcement story.
"""

from __future__ import annotations

from typing import List

from ..accel.baseline import AesAcceleratorBaseline
from ..accel.common import supervisor_label, user_label
from ..accel.config_regs import CFG_SCRATCH
from ..accel.driver import AcceleratorDriver
from ..accel.protected import AesAcceleratorProtected
from ..aes import encrypt_block
from ..attacks.buffer_overflow import run_overflow_attack
from ..attacks.debug_leak import run_debug_leak
from ..attacks.key_misuse import run_key_misuse
from ..ifc.policy import TABLE1_POLICIES, PolicyCheckResult

ALICE_KEY = 0x000102030405060708090A0B0C0D0E0F
SECRET_PT = 0x5EC12E700000000000000000000000AA


def _fresh(protected: bool) -> AcceleratorDriver:
    accel = AesAcceleratorProtected() if protected else AesAcceleratorBaseline()
    return AcceleratorDriver(accel)


def check_p1(protected: bool) -> PolicyCheckResult:
    """P1: a classified key cannot be read out by a less confidential user.

    Forbidden: Eve recovers Alice's key via the debug trace.
    Allowed: Alice's own encryption (which *uses* the key) still works.
    """
    leak = run_debug_leak(protected)
    drv = _fresh(protected)
    alice = user_label("p0").encode()
    if protected:
        drv.allocate_slot(1, alice)
    drv.load_key(alice, 1, ALICE_KEY)
    drv.set_reader(alice)
    ct, _ = drv.encrypt_blocking(alice, 1, SECRET_PT)
    allowed_ok = ct == encrypt_block(SECRET_PT, ALICE_KEY)
    return PolicyCheckResult(TABLE1_POLICIES[0], allowed_ok,
                             not leak.key_recovered,
                             notes=f"debug trace leak: {leak!r}")


def check_p2(protected: bool) -> PolicyCheckResult:
    """P2: a protected key cannot be modified by a less trusted user.

    Forbidden: Eve's scratchpad overrun replaces Alice's key.
    Allowed: Alice re-keys her own slot.
    """
    ovf = run_overflow_attack(protected)
    drv = _fresh(protected)
    alice = user_label("p0").encode()
    if protected:
        drv.allocate_slot(1, alice)
    drv.load_key(alice, 1, ALICE_KEY)
    new_key = 0xFFEEDDCCBBAA99887766554433221100
    drv.load_key(alice, 1, new_key)
    drv.set_reader(alice)
    ct, _ = drv.encrypt_blocking(alice, 1, SECRET_PT)
    allowed_ok = ct == encrypt_block(SECRET_PT, new_key)
    return PolicyCheckResult(TABLE1_POLICIES[1], allowed_ok,
                             not ovf.overwritten, notes=f"{ovf!r}")


def check_p3(protected: bool) -> PolicyCheckResult:
    """P3: a classified key cannot be used by a less trusted user
    (the §3.2.2 master-key scenario)."""
    misuse = run_key_misuse(protected)
    return PolicyCheckResult(TABLE1_POLICIES[2],
                             misuse.supervisor_succeeded,
                             not misuse.eve_succeeded,
                             notes=f"{misuse!r}")


def check_p4(protected: bool) -> PolicyCheckResult:
    """P4: a low-confidentiality user cannot read another user's plaintext.

    Alice decrypts a block; Eve polls the output port.  Protected: the
    routed release never presents Alice's plaintext to Eve.  Allowed:
    Alice collects her own plaintext.
    """
    drv = _fresh(protected)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    if protected:
        drv.allocate_slot(1, alice)
    drv.load_key(alice, 1, ALICE_KEY)
    ct = encrypt_block(SECRET_PT, ALICE_KEY)

    # Eve polls continuously while Alice's decryption drains
    drv.set_reader(eve)
    drv.decrypt(alice, 1, ct)
    drv.step(60)
    eve_saw = [r for r in drv.take_responses() if r.data == SECRET_PT]
    rejected_ok = not eve_saw

    drv.set_reader(alice)
    drv.decrypt(alice, 1, ct)
    drv.step(60)
    alice_got = [r for r in drv.take_responses() if r.data == SECRET_PT]
    allowed_ok = bool(alice_got)
    return PolicyCheckResult(TABLE1_POLICIES[3], allowed_ok, rejected_ok,
                             notes=f"eve saw {len(eve_saw)} plaintext blocks")


def check_p5(protected: bool) -> PolicyCheckResult:
    """P5: a less trusted user cannot modify data beyond its authority.

    Forbidden: Eve writes directly into a scratchpad cell allocated to
    Alice.  Allowed: Eve writes her own cell.
    """
    drv = _fresh(protected)
    alice = user_label("p0").encode()
    eve = user_label("p1").encode()
    if protected:
        drv.allocate_slot(1, alice)
        drv.allocate_slot(2, eve)
    before = drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 2)
    # Eve aims a load at slot 1 (Alice's cells) directly
    drv.load_key_cell(eve, 1, 0, 0xEEEE)
    drv.step(2)
    alice_cell = drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 2)
    rejected_ok = alice_cell == before

    drv.load_key_cell(eve, 2, 0, 0xBBBB)
    drv.step(2)
    own_cell = drv.sim.peek_mem(f"{drv.top}.scratchpad.cells", 4)
    allowed_ok = own_cell == 0xBBBB
    return PolicyCheckResult(TABLE1_POLICIES[4], allowed_ok, rejected_ok)


def check_p6(protected: bool) -> PolicyCheckResult:
    """P6: config readable by all, writable only by the supervisor."""
    drv = _fresh(protected)
    eve = user_label("p1").encode()
    sup = supervisor_label().encode()

    drv.write_config(sup, CFG_SCRATCH, 0xCAFE)
    sup_applied = drv.read_config(CFG_SCRATCH) == 0xCAFE
    eve_reads = drv.read_config(CFG_SCRATCH) == 0xCAFE  # reads are open
    drv.write_config(eve, CFG_SCRATCH, 0x1337)
    eve_blocked = drv.read_config(CFG_SCRATCH) == 0xCAFE
    return PolicyCheckResult(TABLE1_POLICIES[5],
                             sup_applied and eve_reads, eve_blocked)


ALL_CHECKS = [check_p1, check_p2, check_p3, check_p4, check_p5, check_p6]

#: Which modules' static checks discharge each policy row — the paper's
#: actual Table 1 claim is *design-time* verification; the scenario
#: functions above are the runtime witnesses.
STATIC_EVIDENCE = {
    "P1": ["debug", "declassifier", "pipeline"],
    "P2": ["scratchpad", "keyexp"],
    "P3": ["declassifier"],
    "P4": ["outbuf", "declassifier"],
    "P5": ["scratchpad", "outbuf"],
    "P6": ["cfg"],
}


def static_evidence():
    """Run the per-policy module checks; returns
    ``{policy_id: [(module, CheckReport), ...]}``."""
    from ..accel.common import LATTICE
    from ..accel.config_regs import ConfigRegs
    from ..accel.debug import DebugPeripheral
    from ..accel.declassifier import Declassifier
    from ..accel.key_expand_unit import KeyExpandUnit
    from ..accel.output_buffer import OutputBuffer
    from ..accel.pipeline import AesPipeline
    from ..accel.scratchpad import KeyScratchpad
    from ..hdl.elaborate import elaborate, elaborate_shallow
    from ..ifc.checker import IfcChecker

    builders = {
        "debug": (lambda: DebugPeripheral(True), elaborate),
        "declassifier": (lambda: Declassifier(True), elaborate),
        "pipeline": (lambda: AesPipeline(True), elaborate_shallow),
        "scratchpad": (lambda: KeyScratchpad(True), elaborate),
        "keyexp": (lambda: KeyExpandUnit(True), elaborate),
        "outbuf": (lambda: OutputBuffer(True), elaborate),
        "cfg": (lambda: ConfigRegs(True), elaborate),
    }
    reports = {}
    for name, (build, elab) in builders.items():
        reports[name] = IfcChecker(elab(build()), LATTICE,
                                   max_hypotheses=1 << 20).check()
    return {
        pid: [(m, reports[m]) for m in modules]
        for pid, modules in STATIC_EVIDENCE.items()
    }


def run_table1(protected: bool = True) -> List[PolicyCheckResult]:
    """All six rows; on the protected design every row must be ENFORCED."""
    return [check(protected) for check in ALL_CHECKS]


def render_table1(results: List[PolicyCheckResult]) -> str:
    lines = [f"{'id':4s}{'kind':6s}{'status':10s}requirement"]
    for r in results:
        status = "ENFORCED" if r.enforced else "BROKEN"
        lines.append(
            f"{r.policy.policy_id:4s}{r.policy.kind:6s}{status:10s}"
            f"{r.policy.requirement}"
        )
    return "\n".join(lines)
