"""Netlist: the elaborated, flattened form of a module hierarchy.

A netlist is what both the simulator backends and the IFC checker consume:

* ``inputs`` — free signals driven by the testbench (the root's inputs,
  plus — for *shallow* elaborations used in modular IFC checking — the
  outputs of opaque child instances);
* ``regs`` — registers, with ``reg_next[r]`` the folded next-value
  expression (registers implicitly hold their value when unassigned);
* ``comb`` — driven combinational signals in dependency order, with
  ``drivers[s]`` the folded driver expression;
* ``mems`` — memories with their folded write operations.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from .memory import Mem
from .nodes import HdlError, Node, UnknownMemoryError, UnknownSignalError, walk
from .signal import Signal


class CombLoopError(HdlError):
    """Raised when combinational logic forms a cycle."""

    def __init__(self, cycle: List[Signal]):
        self.cycle = cycle
        names = " -> ".join(s.path for s in cycle)
        super().__init__(f"combinational loop: {names}")


class MemWrite:
    """A folded memory write: ``if cond: mem[addr] = data``.

    ``tag`` is checker metadata: the security-tag expression the written
    cell carries after this cycle (see ``Mem.write``); it does not affect
    simulation.
    """

    __slots__ = ("cond", "addr", "data", "tag")

    def __init__(self, cond: Optional[Node], addr: Node, data: Node,
                 tag: Optional[Node] = None):
        self.cond = cond
        self.addr = addr
        self.data = data
        self.tag = tag


class Netlist:
    """Elaborated design, ready for simulation and checking."""

    def __init__(self, root):
        self.root = root
        self.inputs: List[Signal] = []
        self.regs: List[Signal] = []
        self.comb: List[Signal] = []          # dependency (evaluation) order
        self.drivers: Dict[Signal, Node] = {}
        self.reg_next: Dict[Signal, Node] = {}
        self.mems: List[Mem] = []
        self.mem_writes: Dict[Mem, List[MemWrite]] = {}
        self.signals: List[Signal] = []

    # -- queries --------------------------------------------------------------
    def signal_by_path(self, path: str) -> Signal:
        for s in self.signals:
            if s.path == path:
                return s
        raise UnknownSignalError(path, f"netlist of module {self.root.path!r}")

    def mem_by_path(self, path: str) -> Mem:
        for m in self.mems:
            if m.path == path:
                return m
        raise UnknownMemoryError(path, f"netlist of module {self.root.path!r}")

    def driver_of(self, sig: Signal) -> Optional[Node]:
        if sig in self.drivers:
            return self.drivers[sig]
        if sig in self.reg_next:
            return self.reg_next[sig]
        return None

    def all_roots(self) -> List[Node]:
        """Every expression root in the design (drivers, reg-nexts, writes)."""
        roots: List[Node] = list(self.drivers.values())
        roots.extend(self.reg_next.values())
        for writes in self.mem_writes.values():
            for w in writes:
                if w.cond is not None:
                    roots.append(w.cond)
                roots.append(w.addr)
                roots.append(w.data)
                if w.tag is not None:
                    roots.append(w.tag)
        return roots

    def all_nodes(self) -> List[Node]:
        return walk(self.all_roots())

    def fingerprint(self) -> str:
        """Structural fingerprint of the elaborated design.

        Two netlists with equal fingerprints have identical inputs, regs
        (including init values), combinational signals, memories (shape
        and initial contents), and expression structure — in the same
        order.  The simulation backends therefore generate *identical*
        code for them, which is what makes the module-level compile
        caches in :mod:`repro.hdl.sim.compiler` and
        :mod:`repro.hdl.sim.batched` sound.

        Signal paths and security labels are deliberately excluded: they
        do not affect simulation semantics, so two structurally equal
        designs share one compiled program.
        """
        h = hashlib.sha256()

        def put(*parts) -> None:
            h.update(("|".join(str(p) for p in parts) + "\n").encode())

        sig_id: Dict[Signal, str] = {}
        for role, sigs in (("i", self.inputs), ("r", self.regs),
                           ("c", self.comb)):
            for i, s in enumerate(sigs):
                sig_id[s] = f"{role}{i}"
                put("sig", role, i, s.width, s.init if role == "r" else 0)

        mem_id: Dict[Mem, int] = {}
        for i, m in enumerate(self.mems):
            mem_id[m] = i
            put("mem", i, m.depth, m.width, *m.init)

        # Canonical root order (independent of dict iteration details):
        # comb drivers, reg-next expressions, then memory writes.
        roots: List[Node] = [self.drivers[s] for s in self.comb]
        held: List[Signal] = []
        for r in self.regs:
            if r in self.reg_next:
                roots.append(self.reg_next[r])
            else:
                held.append(r)
        write_shape: List[str] = []
        for m in self.mems:
            for w in self.mem_writes.get(m, []):
                if w.cond is not None:
                    roots.append(w.cond)
                roots.extend([w.addr, w.data])
                write_shape.append(f"{mem_id[m]}:{int(w.cond is not None)}")

        node_id: Dict[int, int] = {}
        for n, node in enumerate(walk(roots)):
            node_id[id(node)] = n
            kind = node.kind
            if kind == "signal":
                put("n", n, "signal", sig_id.get(node, "free"))
            elif kind == "const":
                put("n", n, "const", node.width, node.value)
            elif kind == "memread":
                put("n", n, "memread", mem_id[node.mem],
                    node_id[id(node.addr)])
            elif kind == "slice":
                put("n", n, "slice", node.hi, node.lo, node_id[id(node.a)])
            elif kind == "downgrade":
                put("n", n, "downgrade", node_id[id(node.a)])
            else:
                op = getattr(node, "op", kind)
                put("n", n, kind, op, node.width,
                    *(node_id[id(o)] for o in node.operands()))

        put("drivers", *(node_id[id(self.drivers[s])] for s in self.comb))
        put("regnext", *(node_id[id(self.reg_next[r])]
                         for r in self.regs if r in self.reg_next))
        put("held", *(sig_id[r] for r in held))
        put("writes", *write_shape)
        for m in self.mems:
            for w in self.mem_writes.get(m, []):
                put("w", mem_id[m],
                    node_id[id(w.cond)] if w.cond is not None else -1,
                    node_id[id(w.addr)], node_id[id(w.data)])
        return h.hexdigest()

    def stats(self) -> Dict[str, int]:
        """Structural statistics (used by the FPGA resource model)."""
        nodes = self.all_nodes()
        kind_counts: Dict[str, int] = {}
        for n in nodes:
            kind_counts[n.kind] = kind_counts.get(n.kind, 0) + 1
        return {
            "signals": len(self.signals),
            "regs": len(self.regs),
            "reg_bits": sum(r.width for r in self.regs),
            "comb_signals": len(self.comb),
            "mems": len(self.mems),
            "mem_bits": sum(m.depth * m.width for m in self.mems),
            "nodes": len(nodes),
            **{f"op_{k}": v for k, v in sorted(kind_counts.items())},
        }

    def __repr__(self) -> str:
        return (
            f"<Netlist {self.root.path}: {len(self.inputs)} in, "
            f"{len(self.regs)} regs, {len(self.comb)} comb, {len(self.mems)} mems>"
        )


def comb_dependencies(expr: Node, state_signals) -> List[Signal]:
    """Combinational signals that ``expr`` reads (excluding state)."""
    deps = []
    for node in walk([expr]):
        if node.kind == "signal" and node not in state_signals:
            deps.append(node)
    return deps


def topo_sort_comb(
    comb_signals: List[Signal],
    drivers: Dict[Signal, Node],
    state_signals,
) -> List[Signal]:
    """Order combinational signals so dependencies evaluate first."""
    dep_map: Dict[Signal, List[Signal]] = {}
    comb_set = set(comb_signals)
    for sig in comb_signals:
        deps = [
            d
            for d in comb_dependencies(drivers[sig], state_signals)
            if d in comb_set
        ]
        dep_map[sig] = deps

    order: List[Signal] = []
    mark: Dict[Signal, int] = {}  # 0=unvisited,1=in-progress,2=done

    for start in comb_signals:
        if mark.get(start, 0) == 2:
            continue
        stack: List[Tuple[Signal, int]] = [(start, 0)]
        while stack:
            sig, idx = stack.pop()
            if idx == 0:
                if mark.get(sig, 0) == 2:
                    continue
                mark[sig] = 1
            deps = dep_map[sig]
            advanced = False
            for i in range(idx, len(deps)):
                d = deps[i]
                st = mark.get(d, 0)
                if st == 1:
                    # reconstruct an approximate cycle for the error message
                    cycle = [d, sig]
                    raise CombLoopError(cycle)
                if st == 0:
                    stack.append((sig, i + 1))
                    stack.append((d, 0))
                    advanced = True
                    break
            if not advanced:
                mark[sig] = 2
                order.append(sig)
    return order
