"""Synchronous memories (BRAM-style) for the eDSL.

A :class:`Mem` is an array of ``depth`` cells, each ``width`` bits wide.
Reads are combinational (:class:`~repro.hdl.nodes.MemRead`); a registered
read is obtained by latching the read value into a register.  Writes are
synchronous: all writes recorded during a cycle commit at the clock edge,
in program order (last write to the same address wins).

For information-flow purposes a memory may carry:

* ``label`` — one label covering every cell (possibly a dependent label);
* ``cell_labels`` — a per-cell static label list (the statically
  partitioned style of Fig. 3 of the paper);
* ``tag_for`` — a reference to a sibling :class:`Mem` holding the runtime
  security tag of each cell (the tagged-scratchpad style of Fig. 5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import module as _module_ctx
from .nodes import HdlError, MemRead, Node, _coerce
from .types import bit_length_for, check_width, mask_for


class Mem:
    """A synchronous memory array."""

    __slots__ = (
        "name",
        "depth",
        "width",
        "owner",
        "init",
        "label",
        "cell_labels",
        "tag_for",
        "writes",
        "meta",
    )

    def __init__(
        self,
        name: str,
        depth: int,
        width: int,
        owner,
        init: Optional[Sequence[int]] = None,
        label=None,
        cell_labels=None,
    ):
        if depth <= 0:
            raise ValueError(f"memory depth must be positive, got {depth}")
        self.name = name
        self.depth = depth
        self.width = check_width(width)
        self.owner = owner
        if init is None:
            self.init: List[int] = [0] * depth
        else:
            init = list(init)
            if len(init) != depth:
                raise HdlError(
                    f"memory {name}: init has {len(init)} entries, expected {depth}"
                )
            for v in init:
                if not 0 <= v <= mask_for(width):
                    raise HdlError(f"memory {name}: init value {v} does not fit")
            self.init = init
        self.label = label
        if cell_labels is not None and len(cell_labels) != depth:
            raise HdlError(f"memory {name}: cell_labels length mismatch")
        self.cell_labels = list(cell_labels) if cell_labels is not None else None
        self.tag_for = None
        # each write: (conditions, addr node, data node)
        self.writes: List[Tuple[Tuple[Node, ...], Node, Node]] = []
        self.meta = {}

    @property
    def path(self) -> str:
        if self.owner is None:
            return self.name
        return f"{self.owner.path}.{self.name}"

    @property
    def addr_width(self) -> int:
        return bit_length_for(self.depth)

    def read(self, addr) -> MemRead:
        """Combinational read at ``addr``."""
        addr = _coerce(addr, self.addr_width)
        return MemRead(self, addr)

    def write(self, addr, data, conditions: Optional[Tuple[Node, ...]] = None,
              tag=None) -> None:
        """Record a synchronous write, honouring active ``when`` conditions.

        ``tag`` (optional) is the security-tag expression that describes the
        label the written cell will carry *after* this cycle — used when the
        cell's tag is written in the same cycle (tagged FIFOs) or kept (the
        checked scratchpad).  It is metadata for the IFC checker/tracker;
        the value semantics of the memory are unaffected.
        """
        addr = _coerce(addr, self.addr_width)
        data = _coerce(data, self.width)
        if data.width > self.width:
            raise HdlError(
                f"write data width {data.width} exceeds memory width {self.width} "
                f"for {self.path}"
            )
        if data.width < self.width:
            data = data.zext(self.width)
        if conditions is None:
            conditions = _module_ctx.current_conditions()
        if tag is not None:
            tag = _coerce(tag)
        self.writes.append((conditions, addr, data, tag))

    def is_rom(self) -> bool:
        """True if the memory is never written (a lookup table)."""
        return not self.writes

    def __repr__(self) -> str:
        return f"Mem({self.path}, {self.depth}x{self.width})"


def rom(name: str, owner, contents: Sequence[int], width: int) -> Mem:
    """Build a read-only memory from ``contents``."""
    return Mem(name, len(contents), width, owner, init=contents)
