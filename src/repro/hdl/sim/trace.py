"""Waveform capture: record signal values per cycle, optionally as VCD.

Used by the attack reproductions to produce concrete evidence traces
(e.g. the latency samples of the covert-channel experiment) and for
debugging the pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..nodes import HdlError
from ..signal import Signal


class Trace:
    """Tabular recording of selected signals over simulation cycles."""

    def __init__(self, sim, signals: Sequence[Union[Signal, str]]):
        self.sim = sim
        self.signals: List[Signal] = [sim._resolve(s) for s in signals]
        # O(1) lookup maps instead of list.index per query (traces run to
        # thousands of cycles; column()/at() used to rescan every call)
        self._sig_index: Dict[Signal, int] = {
            s: i for i, s in enumerate(self.signals)
        }
        self._cycle_index: Dict[int, int] = {}
        self.rows: List[List[int]] = []
        self.cycles: List[int] = []
        sim.add_watcher(self._capture)

    def _capture(self, sim) -> None:
        self._cycle_index[sim.cycle] = len(self.cycles)
        self.cycles.append(sim.cycle)
        self.rows.append([sim.peek(s) for s in self.signals])

    def column(self, sig: Union[Signal, str]) -> List[int]:
        sig = self.sim._resolve(sig)
        idx = self._sig_index.get(sig)
        if idx is None:
            raise HdlError(
                f"{sig.path} is not recorded by this trace; watched "
                f"signals: {[s.path for s in self.signals]}"
            )
        return [row[idx] for row in self.rows]

    def at(self, cycle: int) -> Dict[str, int]:
        i = self._cycle_index.get(cycle)
        if i is None:
            span = (f"{self.cycles[0]}..{self.cycles[-1]}" if self.cycles
                    else "<empty>")
            raise HdlError(
                f"cycle {cycle} was not captured by this trace "
                f"(recorded cycles: {span})"
            )
        return {s.path: v for s, v in zip(self.signals, self.rows[i])}

    def write_vcd(self, path: str, timescale: str = "1ns") -> None:
        """Dump the recorded trace as a minimal VCD file."""
        idents = {}
        for i, sig in enumerate(self.signals):
            # VCD identifier characters: printable ASCII 33..126
            ident = ""
            n = i
            while True:
                ident += chr(33 + (n % 94))
                n //= 94
                if n == 0:
                    break
            idents[sig] = ident

        with open(path, "w") as f:
            f.write(f"$timescale {timescale} $end\n")
            f.write(f"$scope module {self.sim.netlist.root.name} $end\n")
            for sig in self.signals:
                name = sig.path.replace(".", "_")
                f.write(f"$var wire {sig.width} {idents[sig]} {name} $end\n")
            f.write("$upscope $end\n$enddefinitions $end\n")
            prev: Dict[Signal, int] = {}
            for cycle, row in zip(self.cycles, self.rows):
                f.write(f"#{cycle}\n")
                for sig, value in zip(self.signals, row):
                    if prev.get(sig) == value:
                        continue
                    prev[sig] = value
                    if sig.width == 1:
                        f.write(f"{value}{idents[sig]}\n")
                    else:
                        f.write(f"b{value:b} {idents[sig]}\n")

    def __len__(self) -> int:
        return len(self.rows)
