"""Waveform capture: record signal values per cycle, optionally as VCD.

Used by the attack reproductions to produce concrete evidence traces
(e.g. the latency samples of the covert-channel experiment) and for
debugging the pipeline.

The VCD writer emits a proper module hierarchy (one ``$scope`` per
design path segment), correct multi-bit ``$var`` widths, and compact
base-94 identifiers, so standard waveform viewers load the dumps
unmodified; :func:`read_vcd` parses them back for round-trip tests.

When a :class:`~repro.ifc.tracker.LabelTracker` is attached, the trace
also records each watched signal's *runtime security label* per cycle
and dumps it as two parallel VCD signals (``<name>__conf`` and
``<name>__integ``, one bit per lattice principal) — a blocked flow
becomes visible in the waveform right next to the data it labels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..nodes import HdlError
from ..signal import Signal

#: VCD identifier alphabet: printable ASCII 33..126
_VCD_BASE = 94
_VCD_FIRST = 33


def vcd_ident(n: int) -> str:
    """Compact unique VCD identifier for index ``n`` (base-94, any length)."""
    if n < 0:
        raise ValueError("identifier index must be non-negative")
    out = []
    while True:
        out.append(chr(_VCD_FIRST + (n % _VCD_BASE)))
        n //= _VCD_BASE
        if n == 0:
            return "".join(out)


class Trace:
    """Tabular recording of selected signals over simulation cycles.

    Parameters
    ----------
    sim:
        A :class:`~repro.hdl.sim.engine.Simulator` or a standalone
        :class:`~repro.hdl.sim.batched.BatchSimulator`.
    signals:
        The signals (or dotted paths) to record.
    tracker:
        Optional :class:`~repro.ifc.tracker.LabelTracker` on the same
        simulator; when given, each captured cycle also records the
        tracked label of every watched signal.  Construct the tracker
        *before* the trace so its watcher has already propagated labels
        for the cycle being captured.
    lane:
        Which lane to record on a multi-lane (batched) simulator.
    """

    def __init__(self, sim, signals: Sequence[Union[Signal, str]],
                 tracker=None, lane: int = 0):
        self.sim = sim
        self.lane = lane
        self.tracker = tracker
        self.signals: List[Signal] = [sim._resolve(s) for s in signals]
        # O(1) lookup maps instead of list.index per query (traces run to
        # thousands of cycles; column()/at() used to rescan every call)
        self._sig_index: Dict[Signal, int] = {
            s: i for i, s in enumerate(self.signals)
        }
        self._cycle_index: Dict[int, int] = {}
        self.rows: List[List[int]] = []
        self.cycles: List[int] = []
        #: per-cycle labels (same shape as rows) when a tracker is attached
        self.label_rows: List[List[Optional[object]]] = []
        # per-lane capture rides the bulk values() snapshot: one call per
        # cycle instead of one peek per signal, and the only way to read
        # a specific lane of a batched simulator uniformly
        order = sim.value_signals()
        pos = {s: i for i, s in enumerate(order)}
        vidx = [pos.get(s) for s in self.signals]
        self._vidx = vidx if all(i is not None for i in vidx) else None
        if self._vidx is None and lane != 0:
            raise HdlError(
                "per-lane tracing requires all signals to be in the "
                "bulk values() snapshot")
        sim.add_watcher(self._capture)

    def _capture(self, sim) -> None:
        self._cycle_index[sim.cycle] = len(self.cycles)
        self.cycles.append(sim.cycle)
        if self._vidx is not None:
            try:
                vals = sim.values(self.lane)
            except TypeError:  # single-lane values() without a lane arg
                vals = sim.values()
            self.rows.append([vals[i] for i in self._vidx])
        else:
            self.rows.append([sim.peek(s) for s in self.signals])
        if self.tracker is not None:
            self.label_rows.append(
                [self.tracker.label_at(s) for s in self.signals])

    def column(self, sig: Union[Signal, str]) -> List[int]:
        sig = self.sim._resolve(sig)
        idx = self._sig_index.get(sig)
        if idx is None:
            raise HdlError(
                f"{sig.path} is not recorded by this trace; watched "
                f"signals: {[s.path for s in self.signals]}"
            )
        return [row[idx] for row in self.rows]

    def label_column(self, sig: Union[Signal, str]) -> List[Optional[object]]:
        """Recorded labels of one signal (requires a tracker)."""
        sig = self.sim._resolve(sig)
        idx = self._sig_index.get(sig)
        if idx is None or self.tracker is None:
            raise HdlError(
                f"no labels recorded for {getattr(sig, 'path', sig)}; "
                f"construct Trace(..., tracker=...) to capture labels"
            )
        return [row[idx] for row in self.label_rows]

    def at(self, cycle: int) -> Dict[str, int]:
        i = self._cycle_index.get(cycle)
        if i is None:
            span = (f"{self.cycles[0]}..{self.cycles[-1]}" if self.cycles
                    else "<empty>")
            raise HdlError(
                f"cycle {cycle} was not captured by this trace "
                f"(recorded cycles: {span})"
            )
        return {s.path: v for s, v in zip(self.signals, self.rows[i])}

    # ------------------------------------------------------------------ VCD
    def _scope_tree(self) -> dict:
        """Nest watched signals by module path: {scope: subtree, None: vars}."""
        root: dict = {None: []}
        for sig in self.signals:
            parts = sig.path.split(".")
            node = root
            for part in parts[:-1]:
                node = node.setdefault(part, {None: []})
            node[None].append((parts[-1], sig))
        return root

    def _label_bits(self, label) -> Optional[Tuple[int, int, int]]:
        """(conf_bits, integ_bits, n_principals) of a Label, or None."""
        if label is None:
            return None
        n = len(label.lattice.principals)
        enc = label.encode()
        return enc >> n, enc & ((1 << n) - 1), n

    def write_vcd(self, path: str, timescale: str = "1ns",
                  labels: Optional[bool] = None) -> None:
        """Dump the recorded trace as a VCD file.

        ``labels`` controls the label overlay: ``None`` (default) emits
        it whenever a tracker is attached, ``True`` requires one,
        ``False`` suppresses it.
        """
        if labels is None:
            labels = self.tracker is not None
        if labels and self.tracker is None:
            raise HdlError("write_vcd(labels=True) needs a tracker-attached "
                           "trace; construct Trace(..., tracker=...)")
        n_principals = 0
        if labels:
            for row in self.label_rows:
                for lbl in row:
                    if lbl is not None:
                        n_principals = len(lbl.lattice.principals)
                        break
                if n_principals:
                    break

        idents: Dict[Signal, str] = {}
        label_idents: Dict[Signal, Tuple[str, str]] = {}
        counter = [0]

        def next_ident() -> str:
            ident = vcd_ident(counter[0])
            counter[0] += 1
            return ident

        lines: List[str] = [f"$timescale {timescale} $end"]

        def emit_scope(tree: dict, depth: int) -> None:
            pad = "  " * depth
            for name, sig in tree[None]:
                idents[sig] = next_ident()
                lines.append(
                    f"{pad}$var wire {sig.width} {idents[sig]} {name} $end")
                if labels and n_principals:
                    ci, ii = next_ident(), next_ident()
                    label_idents[sig] = (ci, ii)
                    lines.append(
                        f"{pad}$var wire {n_principals} {ci} "
                        f"{name}__conf $end")
                    lines.append(
                        f"{pad}$var wire {n_principals} {ii} "
                        f"{name}__integ $end")
            for scope in sorted(k for k in tree if k is not None):
                lines.append(f"{pad}$scope module {scope} $end")
                emit_scope(tree[scope], depth + 1)
                lines.append(f"{pad}$upscope $end")

        emit_scope(self._scope_tree(), 0)
        lines.append("$enddefinitions $end")

        def fmt(sig_width: int, ident: str, value: Optional[int]) -> str:
            if value is None:
                return f"bx {ident}" if sig_width > 1 else f"x{ident}"
            if sig_width == 1:
                return f"{value & 1}{ident}"
            return f"b{value:b} {ident}"

        with open(path, "w") as f:
            f.write("\n".join(lines) + "\n")
            prev: Dict[str, Optional[int]] = {}
            first = True
            for i, (cycle, row) in enumerate(zip(self.cycles, self.rows)):
                changes: List[str] = []
                for sig, value in zip(self.signals, row):
                    ident = idents[sig]
                    if not first and prev.get(ident) == value:
                        continue
                    prev[ident] = value
                    changes.append(fmt(sig.width, ident, value))
                if labels and n_principals:
                    lrow = (self.label_rows[i]
                            if i < len(self.label_rows) else None)
                    for j, sig in enumerate(self.signals):
                        ci, ii = label_idents[sig]
                        bits = self._label_bits(
                            lrow[j] if lrow is not None else None)
                        cv, iv = (None, None) if bits is None else bits[:2]
                        if first or prev.get(ci) != cv:
                            prev[ci] = cv
                            changes.append(fmt(n_principals, ci, cv))
                        if first or prev.get(ii) != iv:
                            prev[ii] = iv
                            changes.append(fmt(n_principals, ii, iv))
                f.write(f"#{cycle}\n")
                if first:
                    f.write("$dumpvars\n")
                    f.write("\n".join(changes) + "\n")
                    f.write("$end\n")
                else:
                    if changes:
                        f.write("\n".join(changes) + "\n")
                first = False

    def __len__(self) -> int:
        return len(self.rows)


def read_vcd(path: str) -> Dict[str, object]:
    """Parse a VCD file back into declarations and value changes.

    Returns ``{"timescale": str, "widths": {path: width},
    "changes": {path: [(time, value-or-None), ...]}}`` with dotted
    hierarchical paths rebuilt from the ``$scope`` nesting.  ``x``
    values parse as ``None``.  Covers the subset of VCD this module
    writes (which is also what standard RTL simulators emit for wires).
    """
    timescale = ""
    widths: Dict[str, int] = {}
    by_ident: Dict[str, List[str]] = {}
    changes: Dict[str, List[Tuple[int, Optional[int]]]] = {}
    scope: List[str] = []
    time = 0
    in_defs = True

    def record(ident: str, value: Optional[int]) -> None:
        for p in by_ident.get(ident, ()):
            changes[p].append((time, value))

    with open(path) as f:
        tokens: List[str] = []
        for raw in f:
            tokens.extend(raw.split())
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if in_defs:
                if tok == "$timescale":
                    j = tokens.index("$end", i)
                    timescale = " ".join(tokens[i + 1:j])
                    i = j
                elif tok == "$scope":
                    scope.append(tokens[i + 2])
                    i = tokens.index("$end", i)
                elif tok == "$upscope":
                    scope.pop()
                    i = tokens.index("$end", i)
                elif tok == "$var":
                    width = int(tokens[i + 2])
                    ident = tokens[i + 3]
                    name = tokens[i + 4]
                    full = ".".join(scope + [name])
                    widths[full] = width
                    by_ident.setdefault(ident, []).append(full)
                    changes[full] = []
                    i = tokens.index("$end", i)
                elif tok == "$enddefinitions":
                    in_defs = False
                    i = tokens.index("$end", i)
            else:
                if tok.startswith("#"):
                    time = int(tok[1:])
                elif tok in ("$dumpvars", "$end", "$comment"):
                    pass
                elif tok.startswith("b"):
                    bits = tok[1:]
                    value = None if "x" in bits or "z" in bits \
                        else int(bits, 2)
                    i += 1
                    record(tokens[i], value)
                elif tok[0] in "01xz":
                    value = None if tok[0] in "xz" else int(tok[0])
                    record(tok[1:], value)
            i += 1
    return {"timescale": timescale, "widths": widths, "changes": changes}
