"""Waveform capture: record signal values per cycle, optionally as VCD.

Used by the attack reproductions to produce concrete evidence traces
(e.g. the latency samples of the covert-channel experiment) and for
debugging the pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..signal import Signal


class Trace:
    """Tabular recording of selected signals over simulation cycles."""

    def __init__(self, sim, signals: Sequence[Union[Signal, str]]):
        self.sim = sim
        self.signals: List[Signal] = [sim._resolve(s) for s in signals]
        self.rows: List[List[int]] = []
        self.cycles: List[int] = []
        sim.add_watcher(self._capture)

    def _capture(self, sim) -> None:
        self.cycles.append(sim.cycle)
        self.rows.append([sim.peek(s) for s in self.signals])

    def column(self, sig: Union[Signal, str]) -> List[int]:
        sig = self.sim._resolve(sig)
        idx = self.signals.index(sig)
        return [row[idx] for row in self.rows]

    def at(self, cycle: int) -> Dict[str, int]:
        i = self.cycles.index(cycle)
        return {s.path: v for s, v in zip(self.signals, self.rows[i])}

    def write_vcd(self, path: str, timescale: str = "1ns") -> None:
        """Dump the recorded trace as a minimal VCD file."""
        idents = {}
        for i, sig in enumerate(self.signals):
            # VCD identifier characters: printable ASCII 33..126
            ident = ""
            n = i
            while True:
                ident += chr(33 + (n % 94))
                n //= 94
                if n == 0:
                    break
            idents[sig] = ident

        with open(path, "w") as f:
            f.write(f"$timescale {timescale} $end\n")
            f.write(f"$scope module {self.sim.netlist.root.name} $end\n")
            for sig in self.signals:
                name = sig.path.replace(".", "_")
                f.write(f"$var wire {sig.width} {idents[sig]} {name} $end\n")
            f.write("$upscope $end\n$enddefinitions $end\n")
            prev: Dict[Signal, int] = {}
            for cycle, row in zip(self.cycles, self.rows):
                f.write(f"#{cycle}\n")
                for sig, value in zip(self.signals, row):
                    if prev.get(sig) == value:
                        continue
                    prev[sig] = value
                    if sig.width == 1:
                        f.write(f"{value}{idents[sig]}\n")
                    else:
                        f.write(f"b{value:b} {idents[sig]}\n")

    def __len__(self) -> int:
        return len(self.rows)
