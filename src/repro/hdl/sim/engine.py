"""Simulator driver: poke/peek/step over an elaborated netlist.

The engine wraps one of three backends (interpreter, compiled, or
batched) behind a uniform testbench API:

>>> sim = Simulator(my_module)          # elaborates + compiles
>>> sim.poke("top.in_valid", 1)
>>> sim.step()
>>> sim.peek("top.out_data")

Combinational values are (re)computed lazily: any poke invalidates the
current evaluation, and ``peek`` / ``step`` recompute as needed.

``backend="batched"`` runs ``lanes`` lockstep instances on numpy vectors
(see :mod:`repro.hdl.sim.batched`); through this single-instance API all
lanes receive the same pokes and ``peek`` reads lane 0 — use the
underlying :class:`~repro.hdl.sim.batched.BatchSimulator` (``sim.lanes_sim``)
for per-lane control.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Union

from ...obs import telemetry as _telemetry
from ..elaborate import elaborate
from ..memory import Mem
from ..module import Module
from ..netlist import Netlist
from ..nodes import HdlError
from ..signal import Signal
from ..types import mask_for
from .compiler import CompiledBackend
from .interp import InterpBackend

SignalLike = Union[Signal, str]


class SimStats:
    """Wall-time accounting for one simulator, accumulated only while
    telemetry is enabled (so the disabled path never calls the clock)."""

    __slots__ = ("timed_cycles", "wall_seconds", "step_calls")

    def __init__(self):
        self.timed_cycles = 0
        self.wall_seconds = 0.0
        self.step_calls = 0

    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.timed_cycles / self.wall_seconds


class Simulator:
    """Cycle-accurate simulator over a netlist or module."""

    def __init__(self, design: Union[Module, Netlist], backend: str = "compiled",
                 lanes: int = 1, fault_targets=None, fault_plan=None,
                 tag_tracking: bool = False, lattice=None,
                 tag_precise: bool = True, tag_check_downgrades: bool = True,
                 tag_audit: str = "full"):
        if isinstance(design, Module):
            self.netlist = elaborate(design)
        else:
            self.netlist = design
        self.backend_name = backend
        self.lanes = lanes
        self.cycle = 0
        self.stats = SimStats()
        self._watchers = []

        # Tag synthesis runs first so that the shadow tag nets are part of
        # the netlist every backend compiles — and so the fault injector
        # below can target them like any other net (a fault campaign
        # against the *protected composite*, tag plane included).
        self.tag_plan = None
        self.tags = None
        if tag_tracking:
            from ...ifc.synth import synthesize_tags

            if lattice is None:
                raise ValueError(
                    "tag_tracking=True needs the security lattice the "
                    "design's labels live in (pass lattice=...)")
            self.netlist, self.tag_plan = synthesize_tags(
                self.netlist, lattice, check_downgrades=tag_check_downgrades,
                precise=tag_precise, audit=tag_audit)

        # Fault instrumentation happens before backend construction so all
        # backends compile the same (instrumented) netlist.  With every
        # control input at 0 the instrumented design behaves identically
        # to the original, so one instrumented simulator serves a whole
        # campaign of fault plans without recompiling.
        self.fault_controls = {}
        self._fault_applier = None
        if fault_plan is not None and fault_targets is None:
            fault_targets = fault_plan.signal_targets()
        if fault_targets:
            from ...faults.plan import instrument

            self.netlist, self.fault_controls = instrument(
                self.netlist, fault_targets)
        self._input_set = frozenset(self.netlist.inputs)

        if lanes != 1 and backend != "batched":
            raise ValueError(
                f"lanes={lanes} requires backend='batched' (got {backend!r})"
            )
        if backend == "batched":
            # Imported lazily: the batched backend needs numpy, which is a
            # test extra, not a runtime dependency of the package.
            from .batched import BatchSimulator

            self.lanes_sim = BatchSimulator(self.netlist, lanes=lanes)
            self.lanes_sim.fault_controls = self.fault_controls
        elif backend == "compiled":
            self._be = CompiledBackend(self.netlist)
            self._state: List[int] = self._be.new_state()
            self._mems: List[List[int]] = self._be.new_mems()
            self._env: List[int] = self._be.new_env()
        elif backend == "interp":
            self._ibe = InterpBackend(self.netlist)
            self._istate: Dict[Signal, int] = {}
            for sig in self.netlist.inputs:
                self._istate[sig] = 0
            for reg in self.netlist.regs:
                self._istate[reg] = reg.init
            self._imems: Dict[Mem, List[int]] = {
                m: list(m.init) for m in self.netlist.mems
            }
            self._ienv: Optional[Dict[Signal, int]] = None
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self._dirty = True
        if self.tag_plan is not None:
            from ...ifc.synth import TagView

            # on the batched backend the view wraps the BatchSimulator so
            # per-lane labels/violations are addressable; the engine-level
            # API stays lane-0 either way
            target = self.lanes_sim if backend == "batched" else self
            self.tags = TagView(target, self.tag_plan)
        if fault_plan is not None:
            self.load_fault_plan(fault_plan)

    # -- signal resolution -----------------------------------------------------
    def _resolve(self, sig: SignalLike) -> Signal:
        if isinstance(sig, Signal):
            return sig
        return self.netlist.signal_by_path(sig)

    def _resolve_mem(self, mem: Union[Mem, str]) -> Mem:
        if isinstance(mem, Mem):
            return mem
        return self.netlist.mem_by_path(mem)

    # -- fault injection ----------------------------------------------------------
    def load_fault_plan(self, plan) -> None:
        """Arm a :class:`~repro.faults.plan.FaultPlan` on this simulator.

        The simulator must have been constructed with ``fault_targets``
        covering every signal the plan touches (memory faults need no
        instrumentation).  Fault cycles are absolute ``sim.cycle`` values;
        the plan is applied at the top of every :meth:`step` iteration,
        so a faulted register latches its upset value at the commit of
        the scheduled cycle — exactly between evaluation and commit.
        """
        if self.backend_name == "batched":
            self.lanes_sim.load_fault_plan(plan)
            return
        from ...faults.plan import FaultApplier

        self._fault_applier = FaultApplier(
            plan, self.fault_controls, self.netlist, lanes=1)

    def clear_fault_plan(self) -> None:
        """Disarm any loaded plan and zero every fault-control input."""
        if self.backend_name == "batched":
            self.lanes_sim.clear_fault_plan()
            return
        self._fault_applier = None
        for ctrl in self.fault_controls.values():
            for sig in (ctrl.flip, ctrl.stuck1, ctrl.stuck0):
                self.poke(sig, 0)

    @property
    def fault_events(self) -> int:
        """(fault, cycle) applications performed so far."""
        if self.backend_name == "batched":
            return self.lanes_sim.fault_events
        ap = self._fault_applier
        return ap.events if ap is not None else 0

    def _apply_faults(self, ap) -> None:
        from ...faults.plan import faulted_value

        updates, mem_ops = ap.at(self.cycle)
        for sig, value in updates.items():
            self.poke(sig, value)
        for mem, addr, kind, mask, _lane in mem_ops:
            cur = self.peek_mem(mem, addr)
            self.poke_mem(mem, addr, faulted_value(cur, kind, mask, mem.width))

    # -- testbench API ------------------------------------------------------------
    def poke(self, sig: SignalLike, value: int) -> None:
        """Drive a free (input) signal."""
        sig = self._resolve(sig)
        if not 0 <= value <= mask_for(sig.width):
            raise ValueError(
                f"value {value} does not fit {sig.width}-bit signal {sig.path}"
            )
        if sig not in self._input_set:
            raise HdlError(f"{sig.path} is not a free input of this netlist")
        if self.backend_name == "compiled":
            self._state[self._be.state_index[sig]] = value
        elif self.backend_name == "batched":
            self.lanes_sim.poke_all(sig, value)
        else:
            self._istate[sig] = value
        self._dirty = True

    def peek(self, sig: SignalLike) -> int:
        """Read any signal's current (combinationally settled) value."""
        sig = self._resolve(sig)
        if self.backend_name == "batched":
            return self.lanes_sim.peek(sig, 0)
        self._settle()
        if self.backend_name == "compiled":
            if sig in self._be.state_index:
                return self._state[self._be.state_index[sig]]
            return self._env[self._be.comb_index[sig]]
        env = self._ienv
        assert env is not None
        return env[sig]

    def peek_mem(self, mem: Union[Mem, str], addr: int) -> int:
        mem = self._resolve_mem(mem)
        if self.backend_name == "compiled":
            return self._mems[self._be.mem_index[mem]][addr]
        if self.backend_name == "batched":
            return self.lanes_sim.peek_mem(mem, addr, 0)
        return self._imems[mem][addr]

    def poke_mem(self, mem: Union[Mem, str], addr: int, value: int) -> None:
        """Testbench backdoor write into a memory."""
        mem = self._resolve_mem(mem)
        if not 0 <= value <= mask_for(mem.width):
            raise ValueError(f"value {value} does not fit memory {mem.path}")
        if self.backend_name == "compiled":
            self._mems[self._be.mem_index[mem]][addr] = value
        elif self.backend_name == "batched":
            self.lanes_sim.poke_mem(mem, addr, value)
        else:
            self._imems[mem][addr] = value
        self._dirty = True

    def _settle(self) -> None:
        if not self._dirty:
            return
        if self.backend_name == "compiled":
            self._be.eval_comb(self._state, self._mems, self._env)
        elif self.backend_name == "batched":
            pass  # BatchSimulator settles lazily on its own peeks
        else:
            self._ienv = self._ibe.eval_comb(self._istate, self._imems)
        self._dirty = False

    def step(self, n: int = 1) -> None:
        """Advance ``n`` clock cycles."""
        # telemetry: one global read per call; None (the default) makes
        # the whole accounting path two cheap branches
        obs = _telemetry()
        t0 = perf_counter() if obs is not None else 0.0
        for _ in range(n):
            if self._fault_applier is not None:
                self._apply_faults(self._fault_applier)
            if self._watchers:
                self._settle()
                for w in self._watchers:
                    w(self)
            if self.backend_name == "compiled":
                self._be.step(self._state, self._mems, self._env)
            elif self.backend_name == "batched":
                self.lanes_sim.step(1)
            else:
                self._ibe.step(self._istate, self._imems)
            self.cycle += 1
            self._dirty = True
        if obs is not None:
            st = self.stats
            st.wall_seconds += perf_counter() - t0
            st.timed_cycles += n
            st.step_calls += 1

    def reset(self) -> None:
        """Reset registers to init values and memories to initial contents."""
        if self.backend_name == "compiled":
            self._state = self._be.new_state()
            self._mems = self._be.new_mems()
        elif self.backend_name == "batched":
            self.lanes_sim.reset()
        else:
            for sig in self.netlist.inputs:
                self._istate[sig] = 0
            for reg in self.netlist.regs:
                self._istate[reg] = reg.init
            self._imems = {m: list(m.init) for m in self.netlist.mems}
        self.cycle = 0
        self._dirty = True
        if self.tags is not None:
            self.tags.reseed()
        if self._fault_applier is not None:
            self._fault_applier.reset()

    # -- bulk observation (profilers) -------------------------------------------
    def value_signals(self) -> List[Signal]:
        """Every stateful and combinational signal, in snapshot order.

        The order matches :meth:`values`: inputs, then registers, then
        combinational signals (the same layout all three backends use
        internally), so ``zip(sim.value_signals(), sim.values())`` pairs
        each signal with its settled value.
        """
        return (list(self.netlist.inputs) + list(self.netlist.regs)
                + list(self.netlist.comb))

    def values(self, lane: int = 0) -> List[int]:
        """Settled values of :meth:`value_signals`, as one flat list.

        This is the profiler's sampling primitive: one call per sampled
        cycle instead of one ``peek`` per signal, using each backend's
        native storage (state/env lists for compiled, the value map for
        interp, the selected lane of the limb arrays for batched).
        """
        if self.backend_name == "batched":
            return self.lanes_sim.values(lane)
        if lane != 0:
            raise ValueError(
                f"backend {self.backend_name!r} is single-lane; "
                f"lane {lane} requested")
        self._settle()
        if self.backend_name == "compiled":
            return list(self._state) + list(self._env)
        env = self._ienv
        assert env is not None
        return [env[sig] for sig in self.value_signals()]

    def add_watcher(self, fn) -> None:
        """Register a callable invoked (with the simulator) before each step."""
        self._watchers.append(fn)

    def remove_watcher(self, fn) -> None:
        """Detach a watcher previously registered with ``add_watcher``."""
        if fn in self._watchers:
            self._watchers.remove(fn)

    def run_until(self, sig: SignalLike, value: int = 1, max_cycles: int = 10000) -> int:
        """Step until ``sig == value``; returns cycles waited.

        Raises ``TimeoutError`` after ``max_cycles``.
        """
        sig = self._resolve(sig)
        for waited in range(max_cycles):
            if self.peek(sig) == value:
                return waited
            self.step()
        raise TimeoutError(
            f"{sig.path} did not reach {value} within {max_cycles} cycles"
        )
