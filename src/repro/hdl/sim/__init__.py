"""Cycle-accurate simulation of elaborated netlists."""

from .batched import BatchSimulator
from .engine import Simulator

__all__ = ["BatchSimulator", "Simulator"]
