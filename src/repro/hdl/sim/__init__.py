"""Cycle-accurate simulation of elaborated netlists."""

from .engine import Simulator

__all__ = ["Simulator"]
