"""Interpreter simulation backend.

This backend defines the reference semantics of the netlist: values are
computed by an explicit operands-first traversal of each expression DAG
with per-cycle memoisation.  It is deliberately simple — the compiled
backend (:mod:`repro.hdl.sim.compiler`) is differentially tested against
it.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist import Netlist
from ..nodes import Node, UnknownSignalError, walk


class InterpBackend:
    """Evaluate a netlist cycle-by-cycle by direct interpretation."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist

    def _eval_nodes(self, roots, state, mems, memo) -> None:
        """Evaluate every node reachable from ``roots`` into ``memo``."""
        for node in walk(roots):
            nid = id(node)
            if nid in memo:
                continue
            if node.kind == "signal":
                try:
                    memo[nid] = state[node]
                except KeyError:
                    raise UnknownSignalError(
                        node.path,
                        f"state of netlist {self.netlist.root.path!r} "
                        "(signal referenced but never seeded)") from None
            elif node.kind == "const":
                memo[nid] = node.value
            elif node.kind == "memread":
                addr = memo[id(node.addr)]
                contents = mems[node.mem]
                memo[nid] = contents[addr] if addr < len(contents) else 0
            else:
                vals = [memo[id(op)] for op in node.operands()]
                memo[nid] = node.eval_op(vals)

    def eval_comb(self, state: Dict, mems: Dict) -> Dict:
        """Evaluate all combinational signals; returns the full value map.

        ``state`` maps registers and inputs to ints; the returned dict
        additionally maps every combinational signal to its value.
        """
        env = dict(state)
        memo: Dict[int, int] = {}
        nl = self.netlist
        for sig in nl.comb:
            driver = nl.drivers[sig]
            self._eval_nodes([driver], env, mems, memo)
            env[sig] = memo[id(driver)]
            memo[id(sig)] = env[sig]
        return env

    def step(self, state: Dict, mems: Dict) -> Dict:
        """Advance one clock cycle in place; returns the comb environment."""
        nl = self.netlist
        env = self.eval_comb(state, mems)
        # Seed the memo with signal values so reg-next evaluation reuses them.
        memo: Dict[int, int] = {id(sig): value for sig, value in env.items()}

        roots: List[Node] = list(nl.reg_next.values())
        for writes in nl.mem_writes.values():
            for w in writes:
                if w.cond is not None:
                    roots.append(w.cond)
                roots.extend([w.addr, w.data])
        self._eval_nodes(roots, env, mems, memo)

        for reg, nxt in nl.reg_next.items():
            state[reg] = memo[id(nxt)]

        pending = []
        for mem, writes in nl.mem_writes.items():
            for w in writes:
                if w.cond is None or memo[id(w.cond)] != 0:
                    pending.append((mem, memo[id(w.addr)], memo[id(w.data)]))
        for mem, addr, data in pending:
            contents = mems[mem]
            if addr < len(contents):
                contents[addr] = data
        return env
