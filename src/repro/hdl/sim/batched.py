"""Batched (lane-parallel) simulation backend.

Runs N independent instances ("lanes") of one netlist in lockstep: every
signal becomes a numpy row vector of shape ``(lanes,)`` and one generated
``step`` call advances all lanes a full clock cycle.  This is the scaling
primitive for statistical experiments — noninterference sweeps compare
secret-differing lanes pairwise, throughput studies run many stimulus
patterns at once — where constructing N ``Simulator`` objects and
stepping them one by one would pay the full Python interpreter cost per
lane.

Value representation
--------------------
Everything is stored in ``uint64`` *limbs*: a signal of width ``w``
occupies ``ceil(w / 64)`` rows of a ``(rows, lanes)`` uint64 array, limb
0 holding bits 63..0.  The common wide operations of datapath designs
(xor, mux, slice, concat, memory access, equality) are lowered to
limb-wise uint64 ufuncs, so a 128-bit AES state costs two vector ops,
not a Python-object loop.  Operations that are genuinely awkward on
limbs (wide add/sub/mul, wide shifts by a signal, wide ordered
comparisons) fall back to an object-dtype lane of Python ints via
``_pack``/``_unpack`` — exact, just slower, and absent from typical
hardware netlists.

Like the scalar compiled backend, generated programs are cached at
module level keyed by ``Netlist.fingerprint()``.

The testbench entry point is :class:`BatchSimulator`::

    bs = BatchSimulator(MyAccel(), lanes=64)
    bs.poke_all("top.in_valid", 1)       # every lane
    bs.poke("top.in_data", lane=3, value=0xDEAD)  # one lane
    bs.step(100)
    bs.peek("top.out_data", lane=3)

or, for drop-in use of the existing single-instance API,
``Simulator(design, backend="batched", lanes=N)``.
"""

from __future__ import annotations

import re
import sys
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..elaborate import elaborate
from ..memory import Mem
from ..module import Module
from ..netlist import Netlist
from ..nodes import HdlError, Node, walk
from ..signal import Signal
from ..types import mask_for

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the test extras
    np = None

_M64 = (1 << 64) - 1


def _require_numpy() -> None:
    if np is None:  # pragma: no cover
        raise HdlError(
            "the batched simulation backend requires numpy "
            "(pip install repro[test])"
        )


def _nlimbs(width: int) -> int:
    return (width + 63) // 64


def _limb_width(width: int, j: int) -> int:
    return min(64, width - 64 * j)


# -- runtime helpers injected into the generated module's namespace ------------

def _make_namespace() -> Dict[str, object]:
    u64 = np.uint64
    z64 = u64(0)
    sf = u64(63)

    if hasattr(np, "bitwise_count"):
        _popcount = np.bitwise_count
    else:  # pragma: no cover - numpy < 2.0
        def _popcount(a):
            return np.fromiter((bin(int(x)).count("1") for x in a),
                               dtype=np.uint64, count=len(a))

    def _shl_u(a, b, w, m):
        """(a << b) & mask(w) with Python semantics for any shift amount."""
        bs = np.minimum(b, sf)
        return np.where(b < u64(w), (a << bs) & u64(m), z64)

    def _shr_u(a, b, w):
        bs = np.minimum(b, sf)
        return np.where(b < u64(w), a >> bs, z64)

    def _pack(*limbs):
        """uint64 limb rows -> object-dtype lane of Python ints."""
        acc = limbs[0].astype(object) if hasattr(limbs[0], "astype") else None
        if acc is None:
            acc = np.full(1, int(limbs[0]), dtype=object)
        for j in range(1, len(limbs)):
            nxt = limbs[j]
            nxt = nxt.astype(object) if hasattr(nxt, "astype") else int(nxt)
            acc = acc | (nxt << (64 * j))
        return acc

    def _unpack(o, j):
        """Limb j of an object-dtype lane, back as uint64."""
        return ((o >> (64 * j)) & _M64).astype(np.uint64)

    def _shl_o(a, b, w, m):
        bs = np.where(b < w, b, 0)
        return np.where(b < w, (a << bs) & m, 0)

    def _shr_o(a, b, w):
        bs = np.where(b < w, b, 0)
        return np.where(b < w, a >> bs, 0)

    return {
        "np": np,
        "_U64": u64,
        "_Z64": z64,
        "_u8": np.uint8,
        "_where": np.where,
        "_copyto": np.copyto,
        "_minimum": np.minimum,
        "_popcount": _popcount,
        "_shl_u": _shl_u,
        "_shr_u": _shr_u,
        "_pack": _pack,
        "_unpack": _unpack,
        "_shl_o": _shl_o,
        "_shr_o": _shr_o,
    }


# uint8 reinterpretation of uint64 rows assumes the platform byte order;
# on a (hypothetical) big-endian host the byte-view fast path is skipped
# and the generic shift+mask lowering is used instead.
_LITTLE_ENDIAN = sys.byteorder == "little"


# -- compile cache -------------------------------------------------------------

_BATCH_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_CACHE_CAPACITY = 64
_cache_hits = 0
_cache_misses = 0


def clear_batch_cache() -> None:
    global _cache_hits, _cache_misses
    _BATCH_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


def batch_cache_stats() -> Dict[str, int]:
    return {
        "entries": len(_BATCH_CACHE),
        "hits": _cache_hits,
        "misses": _cache_misses,
    }


# -- codegen value descriptor --------------------------------------------------

class _V:
    """A codegen-time value.

    ``cls`` is one of:

    * ``"u"`` — uint64 limb rows (``exprs`` has one entry per limb);
    * ``"u8"`` — a single uint8 vector for values of width <= 8 (AES byte
      paths: uint8 arithmetic wraps mod 256, which subsumes the width-8
      mask, and byte-aligned slices of stored rows are free strided
      views);
    * ``"b"`` — a single bool vector (width 1);
    * ``"k"`` — a compile-time constant (``k``).

    ``parts8`` (concat results only) maps byte offsets to the ``_V`` of
    the byte-sized part placed there, so a later byte-aligned slice
    forwards straight to the original value instead of re-extracting it
    from the packed limbs (AES rounds re-slice values they just
    assembled).

    ``base``/``s`` (u8 only): the value is byte ``s`` of the whole-limb
    uint8 reinterpretation named ``base``.  Identical per-byte operations
    on bytes of the same limb are then memoised as a single whole-limb
    ufunc over ``base`` (8 bytes per dispatch) — the AES GF(2^8) ladders
    collapse 16 scalar byte pipelines into 2 limb-wide ones.

    ``nz`` marks a ``"b"`` whose vector is *nonzero-iff-true* rather than
    boolean-typed (the bit-test fusion emits ``x & (1<<k)``); such values
    only ever reach select positions, but consumers that need a real
    numpy bool (``np.copyto``'s ``where=``) must convert first.
    """

    __slots__ = ("cls", "exprs", "k", "width", "parts8", "base", "s", "nz")

    def __init__(self, cls: str, width: int, exprs: Tuple[str, ...] = (),
                 k: int = 0, parts8=None, base: Optional[str] = None,
                 s: int = 0, nz: bool = False):
        self.cls = cls
        self.width = width
        self.exprs = exprs
        self.k = k
        self.parts8 = parts8
        self.base = base
        self.s = s
        self.nz = nz


def _is_view(expr: str) -> bool:
    """True for expressions aliasing backend storage (must be copied
    before the commit phase mutates state/memories).  ``_s*`` are hoisted
    state-row locals, ``M*`` hoisted memory planes, and ``.view(``
    catches uint8 reinterpretations of either."""
    return (expr.startswith(("_s", "M", "st[", "env[", "mems["))
            or ".view(" in expr)


class _Emitter:
    """Generates the vectorised ``eval_comb``/``step`` source."""

    def __init__(self, backend: "BatchedBackend"):
        self.be = backend
        self.nl = backend.netlist
        self._intern: Dict[tuple, int] = {}
        self._skey: Dict[int, int] = {}
        self._n = 0
        # Constant pool: scalar-operand ufunc calls pay a per-call weak
        # scalar conversion (~2x an array-array op at 64 lanes), so every
        # constant used inside a vector expression becomes a pre-broadcast
        # (lanes,) uint64 array, passed in as K.
        self.kpool: Dict[int, int] = {}
        self._sel_only: set = set()
        # Temps that alias backend storage through a uint8 reinterpret
        # (the view-ness is hidden behind the temp name).
        self._viewtmps: set = set()
        # Whole-limb uint8 bases (limb expr -> base name) and memoised
        # slab operations over them; both are reset per function body.
        self._u8base: Dict[str, str] = {}
        self._slabs: Dict[tuple, str] = {}

    def _K(self, value: int) -> str:
        # Emitted as a bare local (bound from K in the function prologue)
        # so each use is a LOAD_FAST, not a list subscript.
        idx = self.kpool.setdefault(value, len(self.kpool))
        return f"K{idx}"

    def _is_view_expr(self, e: str) -> bool:
        return e in self._viewtmps or _is_view(e)

    @staticmethod
    def _mk_u(width: int, exprs: Tuple[str, ...], parts8=None) -> _V:
        """Limb list → ``u`` value, folding to ``k`` when every limb is a
        folded literal (a mux of equal constant arms, an AND with 0...).
        Literal-limb *u* values would otherwise leak Python ints into
        positions that need arrays (``~0`` underflows the uint64 cast,
        an int has no ``.astype``); constants also unlock the dedicated
        constant paths of downstream emitters."""
        if all(e[0].isdigit() for e in exprs):
            k = 0
            for j, e in enumerate(exprs):
                k |= int(e) << (64 * j)
            return _V("k", width, k=k)
        return _V("u", width, exprs, parts8=parts8)

    # -- structural keys (CSE) -------------------------------------------------
    def _key_of(self, t: tuple) -> int:
        k = self._intern.get(t)
        if k is None:
            k = len(self._intern)
            self._intern[t] = k
        return k

    def _assign_keys(self, roots: List[Node]) -> None:
        for node in walk(roots):
            nid = id(node)
            if nid in self._skey:
                continue
            kind = node.kind
            if kind == "signal":
                t = ("s", nid)
            elif kind == "const":
                t = ("k", node.width, node.value)
            elif kind == "memread":
                t = ("m", id(node.mem), self._skey[id(node.addr)])
            elif kind == "slice":
                t = ("sl", node.hi, node.lo, self._skey[id(node.a)])
            elif kind == "downgrade":
                self._skey[nid] = self._skey[id(node.a)]
                continue
            elif kind == "concat":
                t = ("cc",) + tuple(self._skey[id(p)] for p in node.parts)
            elif kind == "mux":
                t = ("mx", self._skey[id(node.sel)],
                     self._skey[id(node.if_true)],
                     self._skey[id(node.if_false)])
            else:
                t = (kind, node.op) + tuple(
                    self._skey[id(o)] for o in node.operands())
            self._skey[nid] = self._key_of(t)

    # -- emission helpers ------------------------------------------------------
    def _tmp(self, body: List[str], expr: str) -> str:
        v = f"t{self._n}"
        self._n += 1
        body.append(f"{v} = {expr}")
        return v

    def _as_bool(self, body, v: _V) -> str:
        """Condition expression (bool or nonzero-uint64 vector)."""
        if v.cls == "b":
            return v.exprs[0]
        if v.cls == "k":
            raise AssertionError("constant condition not folded")
        if len(v.exprs) == 1:
            return v.exprs[0]  # np.where treats nonzero as true
        acc = v.exprs[0]
        for e in v.exprs[1:]:
            acc = self._tmp(body, f"{acc} | {e}")
        return acc

    def _as_u(self, body, v: _V, conv: Dict[int, str]) -> Tuple[str, ...]:
        """Limbs of ``v`` as vector expressions (bool lifted via astype).

        A ``u8`` value is returned as-is: numpy promotion widens it
        wherever it meets a uint64 operand, and every call site that
        could pair two uint8 operands at width > 8 is unreachable
        (``u8`` only exists for nodes of width <= 8)."""
        if v.cls in ("u", "u8"):
            return v.exprs
        if v.cls == "b":
            key = id(v)
            if key not in conv:
                conv[key] = self._tmp(body, f"({v.exprs[0]}).astype(_U64)")
            return (conv[key],)
        raise AssertionError(v.cls)

    def _limb(self, v: _V, j: int):
        """Operand limb j as ('k', int) or ('e', expr, needs_promote).

        The flag marks expressions that are not full-width uint64 (bool
        or uint8 typed): consumers must not elide ops that would
        otherwise force the promotion to uint64 (e.g. the AND-with-full-
        mask fold in ``_emit_bitwise``)."""
        if v.cls == "k":
            return ("k", (v.k >> (64 * j)) & _M64)
        if v.cls == "b":
            return ("e", v.exprs[0], True) if j == 0 else ("k", 0)
        if v.cls == "u8":
            return ("e", v.exprs[0], True) if j == 0 else ("k", 0)
        if j < len(v.exprs):
            e = v.exprs[j]
            if e[0].isdigit():  # folded literal limb, e.g. "0"
                return ("k", int(e))
            return ("e", e, False)
        return ("k", 0)

    # -- whole-limb uint8 slabs ------------------------------------------------
    #
    # AES is byte-parallel: map_bytes applies the same GF(2^8) expression
    # to every byte of a 128-bit word, which the netlist spells as 16
    # independent byte pipelines.  Because uint8 ufuncs never carry across
    # byte boundaries, one op over the whole-limb uint8 view computes all
    # 8 bytes of a limb at once.  Each byte _V remembers its (base, s)
    # coordinate; an op between bytes of the same base at the same offset
    # is memoised per base, so the 2nd..8th byte of a limb reuse the slab
    # result through a free strided view.

    def _u8_byte(self, body, base: str, s: int) -> str:
        t = self._tmp(body, f"{base}[{s}::8]")
        if base in self._viewtmps:
            self._viewtmps.add(t)
        return t

    def _slab(self, body, key: tuple, expr: str) -> str:
        b = self._slabs.get(key)
        if b is None:
            b = self._tmp(body, expr)
            self._slabs[key] = b
        return b

    def _pack_obj(self, body, v: _V) -> str:
        """Materialise ``v`` as an object-dtype lane (slow fallback)."""
        if v.cls == "k":
            return repr(v.k)
        if v.cls in ("b", "u8"):
            return f"({v.exprs[0]}).astype(object)"
        return f"_pack({', '.join(v.exprs)})"

    def _unpack_obj(self, body, expr: str, width: int) -> _V:
        obj = self._tmp(body, expr)
        exprs = tuple(
            self._tmp(body, f"_unpack({obj}, {j})")
            for j in range(_nlimbs(width))
        )
        return _V("u", width, exprs)

    # -- per-node emission -----------------------------------------------------
    def _emit_node(self, body, memo, conv, node: Node) -> _V:
        kind = node.kind
        if kind == "const":
            return _V("k", node.width, k=node.value)
        if kind == "signal":
            raise AssertionError(
                f"unseeded signal leaf {node.path}; netlist ordering bug"
            )
        if kind == "unary":
            return self._emit_unary(body, memo, conv, node)
        if kind == "binary":
            return self._emit_binary(body, memo, conv, node)
        if kind == "mux":
            return self._emit_mux(body, memo, conv, node)
        if kind == "slice":
            return self._emit_slice(body, memo, conv, node)
        if kind == "concat":
            return self._emit_concat(body, memo, conv, node)
        if kind == "memread":
            return self._emit_memread(body, memo, conv, node)
        raise AssertionError(kind)  # pragma: no cover

    def _get(self, memo, node: Node) -> _V:
        return memo[self._skey[id(node)]]

    def _emit_unary(self, body, memo, conv, node) -> _V:
        va = self._get(memo, node.a)
        op = node.op
        if va.cls == "k":
            return _V("k", node.width, k=node.eval_op([va.k]))
        if va.cls == "u8":
            # Python-int literals stay weak scalars, so every op below
            # remains uint8-typed (wrap mod 256 subsumes the width-8 mask).
            e = va.exprs[0]
            if op == "not":
                w = node.width
                if va.base is not None:
                    bx = f"~({va.base})" if w == 8 \
                        else f"(~({va.base})) & {mask_for(w)}"
                    nb = self._slab(body, ("not", va.base, w), bx)
                    return _V("u8", w, (self._u8_byte(body, nb, va.s),),
                              base=nb, s=va.s)
                expr = f"~({e})" if w == 8 \
                    else f"(~({e})) & {mask_for(w)}"
                return _V("u8", w, (self._tmp(body, expr),))
            if op == "redor":
                return _V("b", 1, (self._tmp(body, f"({e}) != 0"),))
            if op == "redand":
                return _V("b", 1, (self._tmp(
                    body, f"({e}) == {mask_for(node.a.width)}"),))
            if op == "redxor":
                return _V("b", 1, (self._tmp(
                    body, f"(_popcount({e}) & 1).astype(bool)"),))
            raise AssertionError(op)  # pragma: no cover
        if op == "not":
            if va.cls == "b":
                return _V("b", 1, (self._tmp(body, f"~({va.exprs[0]})"),))
            out = []
            for j, e in enumerate(va.exprs):
                lw = _limb_width(node.width, j)
                if lw == 64:
                    expr = f"~({e})"
                else:
                    expr = f"(~({e})) & {self._K(mask_for(lw))}"
                out.append(self._tmp(body, expr))
            return _V("u", node.width, tuple(out))
        if va.cls == "b":
            return va  # redor/redand/redxor of a 1-bit value is identity
        if op == "redor":
            acc = va.exprs[0]
            for e in va.exprs[1:]:
                acc = self._tmp(body, f"{acc} | {e}")
            return _V("b", 1, (self._tmp(body, f"({acc}) != {self._K(0)}"),))
        if op == "redand":
            parts = []
            for j, e in enumerate(va.exprs):
                lw = _limb_width(node.a.width, j)
                parts.append(
                    self._tmp(body, f"({e}) == {self._K(mask_for(lw))}"))
            acc = parts[0]
            for p in parts[1:]:
                acc = self._tmp(body, f"{acc} & {p}")
            return _V("b", 1, (acc,))
        if op == "redxor":
            acc = va.exprs[0]
            for e in va.exprs[1:]:
                acc = self._tmp(body, f"{acc} ^ {e}")
            return _V("b", 1, (
                self._tmp(body,
                          f"(_popcount({acc}) & {self._K(1)}).astype(bool)"),))
        raise AssertionError(op)  # pragma: no cover

    def _emit_binary(self, body, memo, conv, node) -> _V:
        va, vb = self._get(memo, node.a), self._get(memo, node.b)
        op = node.op
        w = node.width
        if va.cls == "k" and vb.cls == "k":
            return _V("k", w, k=node.eval_op([va.k, vb.k]))

        if op in ("and", "or", "xor"):
            return self._emit_bitwise(body, node, va, vb)
        if op in ("eq", "ne", "lt", "le", "gt", "ge"):
            return self._emit_cmp(body, memo, conv, node, va, vb)
        if op in ("shl", "shr"):
            return self._emit_shift(body, memo, conv, node, va, vb)

        # add / sub / mul
        sym = {"add": "+", "sub": "-", "mul": "*"}[node.op]
        if (w <= 8 and "u8" in (va.cls, vb.cls)
                and {va.cls, vb.cls} <= {"u8", "k"}):
            # uint8 arithmetic wraps mod 256, a multiple of 2^w for every
            # w <= 8, so only sub-byte widths need an explicit mask.
            mask = f" & {mask_for(w)}" if w < 8 else ""
            ba = va.base if va.cls == "u8" else None
            bb = vb.base if vb.cls == "u8" else None
            if (ba or bb) and (va.cls == "k" or vb.cls == "k"
                               or (ba and bb and va.s == vb.s)):
                xa = ba or repr(va.k)
                xb = bb or repr(vb.k)
                nb = self._slab(body, ("a", sym, xa, xb, w),
                                f"({xa} {sym} {xb}){mask}")
                s = va.s if ba else vb.s
                return _V("u8", w, (self._u8_byte(body, nb, s),),
                          base=nb, s=s)
            ea = va.exprs[0] if va.cls == "u8" else repr(va.k)
            eb = vb.exprs[0] if vb.cls == "u8" else repr(vb.k)
            return _V("u8", w,
                      (self._tmp(body, f"({ea} {sym} {eb}){mask}"),))
        if w <= 64:
            (ea,), (eb,) = (self._as_u(body, v, conv) if v.cls != "k"
                            else (self._K(v.k),) for v in (va, vb))
            expr = f"({ea} {sym} {eb})"
            if w < 64:
                expr += f" & {self._K(mask_for(w))}"
            return _V("u", w, (self._tmp(body, expr),))
        # wide arithmetic: object-dtype fallback
        oa, ob = self._pack_obj(body, va), self._pack_obj(body, vb)
        sym = {"add": "+", "sub": "-", "mul": "*"}[node.op]
        return self._unpack_obj(
            body, f"(({oa}) {sym} ({ob})) & {mask_for(w)}", w)

    def _emit_bitwise(self, body, node, va: _V, vb: _V) -> _V:
        sym = {"and": "&", "or": "|", "xor": "^"}[node.op]
        w = node.width
        if va.cls == "b" and vb.cls == "b":
            return _V("b", 1, (
                self._tmp(body, f"{va.exprs[0]} {sym} {vb.exprs[0]}"),))
        if (w <= 8 and "u8" in (va.cls, vb.cls)
                and {va.cls, vb.cls} <= {"u8", "b", "k"}):
            # All-byte operands stay uint8 (bools and <=255 literals
            # promote to uint8, not uint64).  Mixed u8/uint64 falls
            # through to the limb path, where promotion widens it.
            if va.cls == "k":
                va, vb = vb, va
            ea = va.exprs[0]
            if vb.cls == "k":
                kb = vb.k  # va is u8 here: a k operand rules out b
                if kb == 0:
                    return _V("k", w, k=0) if sym == "&" else va
                if sym == "&" and kb == mask_for(w):
                    return va
                if va.base is not None:
                    nb = self._slab(body, ("bw", sym, va.base, kb),
                                    f"{va.base} {sym} {kb}")
                    return _V("u8", w, (self._u8_byte(body, nb, va.s),),
                              base=nb, s=va.s)
                return _V("u8", w, (self._tmp(body, f"{ea} {sym} {kb}"),))
            if (va.cls == "u8" and vb.cls == "u8" and va.base is not None
                    and vb.base is not None and va.s == vb.s):
                b1, b2 = sorted((va.base, vb.base))  # and/or/xor commute
                nb = self._slab(body, ("bw", sym, b1, b2),
                                f"{b1} {sym} {b2}")
                return _V("u8", w, (self._u8_byte(body, nb, va.s),),
                          base=nb, s=va.s)
            return _V("u8", w, (
                self._tmp(body, f"{ea} {sym} {vb.exprs[0]}"),))
        out = []
        for j in range(_nlimbs(w)):
            la, lb = self._limb(va, j), self._limb(vb, j)
            if la[0] == "k" and lb[0] == "k":
                kj = {"&": la[1] & lb[1], "|": la[1] | lb[1],
                      "^": la[1] ^ lb[1]}[sym]
                out.append(repr(kj))
                continue
            if la[0] == "k":
                la, lb = lb, la
            # la is an expression; lb is expression or constant
            if lb[0] == "k":
                kb = lb[1]
                if sym == "&" and kb == 0:
                    out.append("0")
                    continue
                if sym in ("|", "^") and kb == 0:
                    if la[2]:
                        # bool/uint8 operand: OR with a uint64 zero so the
                        # resulting limb really is uint64-typed
                        out.append(self._tmp(
                            body, f"{la[1]} | {self._K(0)}"))
                    else:
                        out.append(la[1])
                    continue
                if sym == "&" and not la[2] \
                        and kb == mask_for(_limb_width(w, j)):
                    out.append(la[1])
                    continue
                out.append(self._tmp(body, f"{la[1]} {sym} {self._K(kb)}"))
            else:
                out.append(self._tmp(body, f"{la[1]} {sym} {lb[1]}"))
        return self._mk_u(w, tuple(out))

    def _emit_cmp(self, body, memo, conv, node, va: _V, vb: _V) -> _V:
        op = node.op
        wide = max(node.a.width, node.b.width) > 64
        if op in ("eq", "ne"):
            parts = []
            for j in range(_nlimbs(max(node.a.width, node.b.width))):
                la, lb = self._limb(va, j), self._limb(vb, j)
                ea = la[1] if la[0] == "e" else self._K(la[1])
                eb = lb[1] if lb[0] == "e" else self._K(lb[1])
                parts.append(self._tmp(body, f"({ea}) == ({eb})"))
            acc = parts[0]
            for p in parts[1:]:
                acc = self._tmp(body, f"{acc} & {p}")
            if op == "ne":
                acc = self._tmp(body, f"~({acc})")
            return _V("b", 1, (acc,))
        if not wide:
            la, lb = self._limb(va, 0), self._limb(vb, 0)
            ea = la[1] if la[0] == "e" else self._K(la[1])
            eb = lb[1] if lb[0] == "e" else self._K(lb[1])
            sym = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}[op]
            return _V("b", 1, (self._tmp(body, f"({ea}) {sym} ({eb})"),))
        # wide ordered comparison: object fallback
        oa, ob = self._pack_obj(body, va), self._pack_obj(body, vb)
        sym = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}[op]
        return _V("b", 1, (self._tmp(body, f"({oa}) {sym} ({ob})"),))

    def _emit_shift(self, body, memo, conv, node, va: _V, vb: _V) -> _V:
        op = node.op
        w = node.width  # == node.a.width
        if vb.cls == "k" and va.cls == "u8":
            sh = vb.k
            if sh >= w:
                return _V("k", w, k=0)
            if sh == 0:
                return va
            if op == "shl":
                mask = f" & {mask_for(w)}" if w < 8 else ""
                expr = f"({va.exprs[0]} << {sh}){mask}"  # u8 wraps mod 256
                bx = f"({va.base} << {sh}){mask}"
            else:
                expr = f"{va.exprs[0]} >> {sh}"
                bx = f"{va.base} >> {sh}"
            if va.base is not None:
                nb = self._slab(body, ("sh", op, sh, va.base, w), bx)
                return _V("u8", w, (self._u8_byte(body, nb, va.s),),
                          base=nb, s=va.s)
            return _V("u8", w, (self._tmp(body, expr),))
        if vb.cls == "k":
            sh = vb.k
            if op == "shl":
                if sh >= w:
                    return _V("k", w, k=0)
                if sh == 0:
                    return va
                limbs = self._as_u(body, va, conv)
                if w <= 64:
                    expr = f"({limbs[0]} << {self._K(sh)})"
                    if w < 64:
                        expr += f" & {self._K(mask_for(w))}"
                    return _V("u", w, (self._tmp(body, expr),))
                return self._shift_limbs_const(body, limbs, w, sh)
            else:
                if sh >= w:
                    return _V("k", w, k=0)
                if sh == 0:
                    return va
                limbs = self._as_u(body, va, conv)
                if w <= 64:
                    return _V(
                        "u", w,
                        (self._tmp(body, f"{limbs[0]} >> {self._K(sh)}"),))
                return self._shift_limbs_const(body, limbs, w, -sh)
        # dynamic shift amount
        if w <= 64 and node.b.width <= 64:
            (ea,) = (self._as_u(body, va, conv) if va.cls != "k"
                     else (self._K(va.k),))
            (eb,) = (self._as_u(body, vb, conv) if vb.cls != "k"
                     else (self._K(vb.k),))
            if op == "shl":
                expr = f"_shl_u({ea}, {eb}, {w}, {mask_for(w)})"
            else:
                expr = f"_shr_u({ea}, {eb}, {w})"
            return _V("u", w, (self._tmp(body, expr),))
        # wide value or wide shift amount: object fallback
        oa, ob = self._pack_obj(body, va), self._pack_obj(body, vb)
        if op == "shl":
            expr = f"_shl_o({oa}, {ob}, {w}, {mask_for(w)})"
        else:
            expr = f"_shr_o({oa}, {ob}, {w})"
        return self._unpack_obj(body, expr, w)

    def _shift_limbs_const(self, body, limbs: Tuple[str, ...], w: int,
                           sh: int) -> _V:
        """Shift multi-limb value by a constant (positive = left)."""
        L = _nlimbs(w)
        out = []
        for j in range(L):
            terms = []
            for i, e in enumerate(limbs):
                # source limb i contributes bits [64i, 64i+64) shifted by sh
                delta = 64 * (j - i) - sh
                if delta == 0:
                    terms.append(e)
                elif 0 < delta < 64:
                    terms.append(f"({e} >> {self._K(delta)})")
                elif -64 < delta < 0:
                    terms.append(f"({e} << {self._K(-delta)})")
            if not terms:
                out.append("0")
                continue
            expr = " | ".join(terms)
            lw = _limb_width(w, j)
            if lw < 64:
                expr = f"({expr}) & {self._K(mask_for(lw))}"
            out.append(self._tmp(body, expr))
        return self._mk_u(w, tuple(out))

    def _emit_mux(self, body, memo, conv, node) -> _V:
        vs = self._get(memo, node.sel)
        vt, vf = self._get(memo, node.if_true), self._get(memo, node.if_false)
        if vs.cls == "k":
            return vt if vs.k != 0 else vf
        nf = node.if_false
        if (node.sel.width == 1 and nf.kind == "const" and nf.value == 0
                and vt.cls != "b"):
            return self._emit_mul_mask(body, node, vs, vt)
        cond = self._as_bool(body, vs)
        w = node.width
        if vt.cls == "b" and vf.cls == "b":
            return _V("b", 1, (self._tmp(
                body, f"_where({cond}, {vt.exprs[0]}, {vf.exprs[0]})"),))
        if (w <= 8 and "u8" in (vt.cls, vf.cls)
                and {vt.cls, vf.cls} <= {"u8", "b", "k"}):
            # Arms stay uint8: bools and <=255 weak-scalar literals
            # promote to the uint8 arm, never to uint64.
            et = vt.exprs[0] if vt.cls != "k" else repr(vt.k)
            ef = vf.exprs[0] if vf.cls != "k" else repr(vf.k)
            return _V("u8", w, (self._tmp(
                body, f"_where({cond}, {et}, {ef})"),))
        out = []
        for j in range(_nlimbs(w)):
            lt, lf = self._limb(vt, j), self._limb(vf, j)
            if lt[0] == "k" and lf[0] == "k" and lt[1] == lf[1]:
                out.append(repr(lt[1]))
                continue
            et = lt[1] if lt[0] == "e" else self._K(lt[1])
            ef = lf[1] if lf[0] == "e" else self._K(lf[1])
            out.append(self._tmp(body, f"_where({cond}, {et}, {ef})"))
        return self._mk_u(w, tuple(out))

    def _emit_mul_mask(self, body, node, vs: _V, vt: _V) -> _V:
        """``mux(c, a, 0)`` with a 1-bit select lowers to ``a * c``.

        The select is excluded from bit-test fusion (see
        ``_sel_only_keys``), so its emitted value is exactly 0 or 1 and a
        multiply replaces ``np.where`` (roughly half the ufunc cost, and
        slab-able on byte paths — this is the xtime conditional-0x1B
        reduction in every GF(2^8) ladder)."""
        w = node.width
        if vt.cls == "k" and vt.k == 0:
            return _V("k", w, k=0)
        if w <= 8 and vt.cls in ("u8", "k") and vs.cls in ("u8", "b"):
            if vs.cls == "u8":
                bt = vt.base if vt.cls == "u8" else None
                if vs.base is not None and (
                        vt.cls == "k" or (bt is not None and vt.s == vs.s)):
                    xt = bt or repr(vt.k)
                    nb = self._slab(body, ("mm", xt, vs.base),
                                    f"{xt} * {vs.base}")
                    return _V("u8", w, (self._u8_byte(body, nb, vs.s),),
                              base=nb, s=vs.s)
                et = vt.exprs[0] if vt.cls == "u8" else repr(vt.k)
                return _V("u8", w, (
                    self._tmp(body, f"({et}) * ({vs.exprs[0]})"),))
            # bool select: reinterpret as uint8 {0,1} to keep the
            # product byte-typed
            et = vt.exprs[0] if vt.cls == "u8" else repr(vt.k)
            return _V("u8", w, (self._tmp(
                body, f"({et}) * ({vs.exprs[0]}).view(_u8)"),))
        # uint64 limbs: bool/uint8 selects promote against the uint64
        # operand (a pooled K array when the arm is constant)
        sel = vs.exprs[0]
        out = []
        for j in range(_nlimbs(w)):
            lt = self._limb(vt, j)
            if lt[0] == "k":
                if lt[1] == 0:
                    out.append("0")
                    continue
                out.append(self._tmp(body, f"({sel}) * {self._K(lt[1])}"))
            else:
                out.append(self._tmp(body, f"({lt[1]}) * ({sel})"))
        return self._mk_u(w, tuple(out))

    def _emit_slice(self, body, memo, conv, node) -> _V:
        va = self._get(memo, node.a)
        if va.cls == "k":
            return _V("k", node.width, k=node.eval_op([va.k]))
        if va.cls == "b":
            return va  # only [0:0] of a 1-bit value is well-formed
        aw, hi, lo, w = node.a.width, node.hi, node.lo, node.width
        if lo == 0 and hi == aw - 1:
            return va
        if w == 8 and lo % 8 == 0 and va.parts8 is not None:
            # The source is a concat of byte-sized parts: forward to the
            # part at this offset instead of re-slicing the packed limbs.
            ent = va.parts8.get(lo)
            if ent is not None:
                return ent
        if va.cls == "u8":
            e = va.exprs[0]
            if w == 1 and self._skey[id(node)] in self._sel_only:
                if va.base is not None:
                    nb = self._slab(body, ("bt", lo, va.base),
                                    f"{va.base} & {1 << lo}")
                    return _V("b", 1, (self._u8_byte(body, nb, va.s),),
                              nz=True)
                return _V("b", 1, (self._tmp(body, f"{e} & {1 << lo}"),),
                          nz=True)
            if lo == 0:
                expr = f"{e} & {mask_for(w)}"
                bx = f"{va.base} & {mask_for(w)}"
            elif hi == aw - 1:
                expr = f"{e} >> {lo}"
                bx = f"{va.base} >> {lo}"
            else:
                expr = f"({e} >> {lo}) & {mask_for(w)}"
                bx = f"({va.base} >> {lo}) & {mask_for(w)}"
            if va.base is not None:
                nb = self._slab(body, ("slc", hi, lo, va.base), bx)
                return _V("u8", w, (self._u8_byte(body, nb, va.s),),
                          base=nb, s=va.s)
            return _V("u8", w, (self._tmp(body, expr),))
        if w == 1 and self._skey[id(node)] in self._sel_only:
            # This bit is only ever tested for nonzero (mux select), so a
            # single masked AND replaces the shift+mask pair.  The value
            # is 0 or 1<<lo, which np.where treats identically to 0/1.
            p, s = lo // 64, lo % 64
            if p >= len(va.exprs):
                return _V("k", 1, k=0)
            t = self._tmp(body, f"{va.exprs[p]} & {self._K(1 << s)}")
            return _V("b", 1, (t,), nz=True)
        if w == 8 and lo % 8 == 0 and _LITTLE_ENDIAN:
            # Byte-aligned byte extraction: reinterpret the uint64 limb
            # row as uint8 and take a strided view — no ufunc at all.
            p, s = lo // 64, (lo % 64) // 8
            if p >= len(va.exprs):
                return _V("k", 8, k=0)
            e = va.exprs[p]
            if e.isidentifier() or e.startswith(("_s", "M", "st[", "env[",
                                                 "mems[")):
                base = self._u8base.get(e)
                if base is None:
                    base = self._tmp(body, f"({e}).view(_u8)")
                    self._u8base[e] = base
                    if self._is_view_expr(e):
                        self._viewtmps.add(base)
                return _V("u8", 8, (self._u8_byte(body, base, s),),
                          base=base, s=s)
        if aw <= 64:
            e = va.exprs[0]
            if lo == 0:
                expr = f"{e} & {self._K(mask_for(w))}"
            elif hi == aw - 1:
                expr = f"{e} >> {self._K(lo)}"
            else:
                expr = f"({e} >> {self._K(lo)}) & {self._K(mask_for(w))}"
            return _V("u", w, (self._tmp(body, expr),))
        # wide source: assemble each result limb from 1-2 source limbs
        out = []
        La = len(va.exprs)
        for j in range(_nlimbs(w)):
            bitpos = lo + 64 * j
            p, s = bitpos // 64, bitpos % 64
            lw = _limb_width(w, j)
            if s == 0:
                expr = va.exprs[p]
                if lw < 64:
                    expr = f"{expr} & {self._K(mask_for(lw))}"
                elif j == 0 and _nlimbs(w) == 1:
                    # full aligned 64-bit limb: pure view passthrough
                    return _V("u", w, (va.exprs[p],))
            else:
                expr = f"({va.exprs[p]} >> {self._K(s)})"
                if p + 1 < La and lw > 64 - s:
                    expr += f" | ({va.exprs[p + 1]} << {self._K(64 - s)})"
                if lw < 64:
                    expr = f"({expr}) & {self._K(mask_for(lw))}"
            out.append(self._tmp(body, expr))
        return _V("u", w, tuple(out))

    def _emit_concat(self, body, memo, conv, node) -> _V:
        parts = [self._get(memo, p) for p in node.parts]
        if all(p.cls == "k" for p in parts):
            return _V("k", node.width,
                      k=node.eval_op([p.k for p in parts]))
        w = node.width
        L = _nlimbs(w)
        # terms[j] holds (expr, is_uint8_typed) pairs for limb j
        terms: List[List[Tuple[str, bool]]] = [[] for _ in range(L)]
        kacc = [0] * L
        parts8: Dict[int, _V] = {}
        # bytemap[j]: byte position -> u8 part _V, for whole-base repack
        bytemap: List[Dict[int, _V]] = [dict() for _ in range(L)]
        all_bytes = True
        offset = 0
        for pnode, pv in zip(reversed(node.parts), reversed(parts)):
            pw = pnode.width
            if pw == 8 and offset % 8 == 0:
                if pv.cls in ("k", "u8", "u"):
                    parts8[offset] = pv
                    if pv.cls == "u8" and pv.base is not None:
                        bytemap[offset // 64][(offset % 64) // 8] = pv
                else:
                    all_bytes = False
            else:
                all_bytes = False
            if pv.cls == "k":
                kval = pv.k << offset
                for j in range(L):
                    kacc[j] |= (kval >> (64 * j)) & _M64
            elif pv.cls == "u8":
                tgt, s = offset // 64, offset % 64
                if s == 0:
                    terms[tgt].append((pv.exprs[0], True))
                elif w <= 8:
                    # literal shift keeps uint8 (s + pw <= 8, no wrap)
                    terms[tgt].append((f"({pv.exprs[0]} << {s})", True))
                else:
                    # uint8 << uint64 promotes, then wraps mod 2^64:
                    # exactly the limb split
                    terms[tgt].append(
                        (f"({pv.exprs[0]} << {self._K(s)})", False))
            else:
                limbs = self._as_u(body, pv, conv)
                for i, e in enumerate(limbs):
                    lw = _limb_width(pw, i)
                    bitpos = offset + 64 * i
                    tgt, s = bitpos // 64, bitpos % 64
                    if s == 0:
                        terms[tgt].append((e, False))
                    else:
                        # uint64 << wraps mod 2^64: exactly the limb split
                        terms[tgt].append(
                            (f"({e} << {self._K(s)})", False))
                        if s + lw > 64 and tgt + 1 < L:
                            terms[tgt + 1].append(
                                (f"({e} >> {self._K(64 - s)})", False))
            offset += pw
        if L == 1 and w <= 8:
            # A byte-or-narrower concat: keep it uint8-typed when every
            # term is (the first uint64 term would promote the OR chain).
            ts = [e for e, _ in terms[0]]
            all_u8 = all(f for _, f in terms[0])
            if kacc[0]:
                ts.append(repr(kacc[0]))  # <= mask(w) <= 255: stays uint8
            if len(ts) == 1:
                e, f = terms[0][0]
                if e.startswith("("):
                    e = self._tmp(body, e)
                return _V("u8" if f else "u", w, (e,))
            joined = self._tmp(body, " | ".join(ts))
            return _V("u8" if all_u8 else "u", w, (joined,))
        out = []
        for j in range(L):
            bm = bytemap[j]
            if (len(bm) == 8 and _LITTLE_ENDIAN
                    and len({v.base for v in bm.values()}) == 1
                    and all(v.s == s for s, v in bm.items())):
                # All 8 bytes of this limb are bytes s=0..7 of one slab:
                # the limb IS that slab reinterpreted as uint64.  This
                # undoes the shift/or packing for values that went
                # through a whole-limb byte pipeline (e.g. sub_bytes ->
                # xtime ladders) — the concat costs one view.
                base = next(iter(bm.values())).base
                t = self._tmp(body, f"({base}).view(_U64)")
                if base in self._viewtmps:
                    self._viewtmps.add(t)
                out.append(t)
                continue
            ts = terms[j]
            kstr = repr(kacc[j]) if kacc[j] else None
            if not ts:
                out.append(kstr or "0")
                continue
            # A limb whose only array term is uint8-typed would leave a
            # uint8 array posing as a uint64 limb; OR in a uint64 zero to
            # force the promotion.  Multi-term limbs promote on their own
            # (at most one term per limb sits unshifted at bit 0).
            if len(ts) == 1 and kstr is None:
                e, is_u8 = ts[0]
                if is_u8:
                    out.append(self._tmp(body, f"{e} | {self._K(0)}"))
                elif e.startswith("("):
                    out.append(self._tmp(body, e))
                else:
                    out.append(e)
                continue
            exprs = [e for e, _ in ts]
            if kstr is not None:
                if len(ts) == 1 and ts[0][1]:
                    # Single uint8 term: a bare literal would either keep
                    # the limb uint8 (<=255) or overflow the weak-scalar
                    # conversion (>255); OR with the pooled uint64 array.
                    exprs.append(self._K(kacc[j]))
                else:
                    exprs.append(kstr)
            out.append(self._tmp(body, " | ".join(exprs)))
        return self._mk_u(
            w, tuple(out),
            parts8=parts8 if (all_bytes and parts8) else None)

    def _emit_memread(self, body, memo, conv, node) -> _V:
        mem = node.mem
        row0, L = self.be.mem_slot[mem]
        va = self._get(memo, node.addr)
        depth = mem.depth
        if va.cls == "k":
            if va.k >= depth:
                return _V("k", node.width, k=0)
            exprs = tuple(f"M{row0 + j}[{va.k}]" for j in range(L))
            return _V("u", node.width, exprs)
        pow2 = (depth & (depth - 1)) == 0
        covered = depth >= (1 << node.addr.width)
        if (pow2 and covered and L == 1 and va.cls == "u8"
                and va.base is not None):
            # Byte-vector address (e.g. S-box input): gather all 8 bytes
            # of the limb in one fancy index.  base is (lanes*8,) laid
            # out lane-major, so reshape(-1, 8).T gives an (8, lanes)
            # index whose row s addresses byte s of every lane.
            g = self._slab(body, ("mr", id(mem), va.base),
                           f"M{row0}[({va.base}).reshape(-1, 8).T, ln]")
            return _V("u", node.width, (self._tmp(body, f"{g}[{va.s}]"),))
        (addr,) = self._as_u(body, va, conv)
        if pow2 and covered:
            exprs = tuple(
                self._tmp(body, f"M{row0 + j}[{addr}, ln]")
                for j in range(L)
            )
            return _V("u", node.width, exprs)
        ok = self._tmp(body, f"{addr} < {self._K(depth)}")
        clamped = self._tmp(body, f"_minimum({addr}, {self._K(depth - 1)})")
        exprs = tuple(
            self._tmp(
                body,
                f"_where({ok}, M{row0 + j}[{clamped}, ln], "
                f"{self._K(0)})")
            for j in range(L)
        )
        return _V("u", node.width, exprs)

    # -- function bodies -------------------------------------------------------
    def _seed_state(self, memo) -> None:
        # Seeds are the hoisted row locals (bound in the prologue), so
        # each use is a LOAD_FAST rather than an array subscript.
        for sig, (row0, L) in self.be.state_slot.items():
            exprs = tuple(f"_s{row0 + j}" for j in range(L))
            memo[self._skey.setdefault(id(sig), self._key_of(("s", id(sig))))] \
                = _V("u", sig.width, exprs)

    def _emit_expr_dag(self, body, memo, conv, roots: List[Node]) -> None:
        for n in walk(roots):
            key = self._skey[id(n)]
            if key in memo:
                continue
            memo[key] = self._emit_node(body, memo, conv, n)

    def _emit_comb(self, body, memo, conv,
                   needed: Optional[set], store: bool) -> None:
        nl = self.nl
        for sig in nl.comb:
            if needed is not None and sig not in needed:
                continue
            driver = nl.drivers[sig]
            self._emit_expr_dag(body, memo, conv, [driver])
            val = self._get(memo, driver)
            if store:
                row0, L = self.be.comb_slot[sig]
                for j in range(L):
                    lk = self._limb(val, j)
                    src = lk[1] if lk[0] == "e" else repr(lk[1])
                    body.append(f"env[{row0 + j}] = {src}")
            memo[self._skey.setdefault(
                id(sig), self._key_of(("s", id(sig))))] = val

    def _step_needed_comb(self) -> set:
        """Comb signals transitively needed by reg-nexts and mem writes."""
        nl = self.nl
        roots: List[Node] = list(nl.reg_next.values())
        for writes in nl.mem_writes.values():
            for wr in writes:
                if wr.cond is not None:
                    roots.append(wr.cond)
                roots.extend([wr.addr, wr.data])
        needed = set()
        comb_set = set(nl.comb)
        stack = list(roots)
        seen = set()
        while stack:
            n = stack.pop()
            if id(n) in seen:
                continue
            seen.add(id(n))
            if n.kind == "signal":
                if n in comb_set and n not in needed:
                    needed.add(n)
                    stack.append(nl.drivers[n])
                continue
            stack.extend(n.operands())
        return needed

    def _sel_only_keys(self, value_roots: List[Node]) -> set:
        """Structural keys used *exclusively* as mux selects in this body.

        Nodes in this set only ever feed nonzero tests, so their emitted
        value may be any nonzero-iff-true vector (enables the bit-test
        fusion in ``_emit_slice``).  Computed over structural keys, not
        node ids, so a CSE hit can never leak a test-only value into a
        value position.
        """
        value_keys = set()
        sel_keys = set()
        for r in value_roots:
            value_keys.add(self._skey[id(r)])
        for n in walk(value_roots):
            if n.kind == "mux":
                nf = n.if_false
                if (n.sel.width == 1 and nf.kind == "const"
                        and nf.value == 0):
                    # mux(c, a, 0) lowers to a * c (_emit_mul_mask): the
                    # select is consumed as an exact 0/1 value
                    value_keys.add(self._skey[id(n.sel)])
                else:
                    sel_keys.add(self._skey[id(n.sel)])
                value_keys.add(self._skey[id(n.if_true)])
                value_keys.add(self._skey[id(n.if_false)])
            else:
                for o in n.operands():
                    value_keys.add(self._skey[id(o)])
        return sel_keys - value_keys

    def _staged(self, body, val: _V) -> _V:
        """Copy storage views so the commit phase reads pre-commit values."""
        if val.cls not in ("u", "u8"):
            return val
        exprs = tuple(
            self._tmp(body, f"({e}).copy()") if self._is_view_expr(e) else e
            for e in val.exprs
        )
        return _V(val.cls, val.width, exprs)

    _TMP_ASSIGN_RE = re.compile(r"^(t\d+|_wm\d+) = ")
    _TMP_TOKEN_RE = re.compile(r"\b(?:t\d+|_wm\d+)\b")
    _HOIST_RE = re.compile(r"\b(_s|M|K)(\d+)\b")

    def _dce(self, body: List[str], keep_tail: List[str]) -> List[str]:
        """Drop temp assignments whose target is never read.

        Byte-slice forwarding and constant folding leave whole chains
        (notably re-packing concats whose every consumer was a byte
        slice) with no remaining readers; one backward liveness pass
        removes them.  Lines with non-temp targets (env stores) are
        effects and always survive."""
        used = set()
        for line in keep_tail:
            used.update(self._TMP_TOKEN_RE.findall(line))
        out: List[str] = []
        for line in reversed(body):
            m = self._TMP_ASSIGN_RE.match(line)
            if m and m.group(1) not in used:
                continue
            used.update(self._TMP_TOKEN_RE.findall(line))
            out.append(line)
        out.reverse()
        return out

    def _prologue(self, fbody: List[str]) -> List[str]:
        """Bind every referenced state row / memory plane / pooled
        constant to a local, so later uses are LOAD_FASTs."""
        used = {"_s": set(), "M": set(), "K": set()}
        for line in fbody:
            for pfx, num in self._HOIST_RE.findall(line):
                used[pfx].add(int(num))
        pro = [f"_s{r} = st[{r}]" for r in sorted(used["_s"])]
        pro += [f"M{r} = mems[{r}]" for r in sorted(used["M"])]
        pro += [f"K{i} = K[{i}]" for i in sorted(used["K"])]
        return pro

    def generate(self) -> Tuple[str, List[int]]:
        nl = self.nl

        roots = nl.all_roots()
        self._assign_keys(roots)

        # ---- eval_comb -------------------------------------------------------
        body: List[str] = []
        memo: Dict[int, _V] = {}
        conv: Dict[int, str] = {}
        eval_roots = [nl.drivers[s] for s in nl.comb]
        self._sel_only = self._sel_only_keys(eval_roots)
        self._u8base = {}
        self._slabs = {}
        self._seed_state(memo)
        self._emit_comb(body, memo, conv, needed=None, store=True)

        # ---- step ------------------------------------------------------------
        # Only the comb cone feeding registers and memory writes is
        # evaluated; the engine re-settles lazily before the next peek.
        body2: List[str] = []
        memo2: Dict[int, _V] = {}
        conv2: Dict[int, str] = {}
        needed = self._step_needed_comb()
        step_roots: List[Node] = [nl.drivers[s] for s in nl.comb
                                  if s in needed]
        step_roots.extend(nl.reg_next.values())
        for writes in nl.mem_writes.values():
            for wr in writes:
                # Write conditions count as value uses: the commit phase
                # needs a true boolean mask for fancy indexing.
                step_roots.extend(
                    [wr.addr, wr.data]
                    + ([wr.cond] if wr.cond is not None else []))
        self._sel_only = self._sel_only_keys(step_roots)
        self._u8base = {}
        self._slabs = {}
        self._seed_state(memo2)
        self._emit_comb(body2, memo2, conv2, needed=needed, store=False)

        commits: List[str] = []
        mask_memo: Dict[int, str] = {}
        for reg, nxt in nl.reg_next.items():
            row0, L = self.be.state_slot[reg]
            # Enable-register fusion: `reg <= mux(en, new, reg)` (the
            # dominant pattern in a stall-capable pipeline) commits as a
            # masked in-place copy — no np.where, no full-row store, and
            # the old-value arm is never materialised.  Only when the
            # mux itself isn't needed as a value elsewhere in this body.
            if (nxt.kind == "mux"
                    and self._skey[id(nxt.if_false)] == self._skey[id(reg)]
                    and self._skey[id(nxt)] not in memo2):
                self._emit_expr_dag(body2, memo2, conv2,
                                    [nxt.sel, nxt.if_true])
                vs = self._get(memo2, nxt.sel)
                if vs.cls == "k" and vs.k == 0:
                    continue  # enable tied low: register never changes
                val = self._staged(body2, self._get(memo2, nxt.if_true))
                if vs.cls == "k":
                    for j in range(L):
                        lk = self._limb(val, j)
                        src = lk[1] if lk[0] == "e" else repr(lk[1])
                        commits.append(f"st[{row0 + j}] = {src}")
                    continue
                selkey = self._skey[id(nxt.sel)]
                mask = mask_memo.get(selkey)
                if mask is None:
                    cond = self._as_bool(body2, vs)
                    if vs.cls == "b" and not vs.nz:
                        mask = cond
                    else:
                        mask = self._tmp(body2, f"({cond}).astype(bool)")
                    mask_memo[selkey] = mask
                for j in range(L):
                    lk = self._limb(val, j)
                    src = lk[1] if lk[0] == "e" else repr(lk[1])
                    commits.append(
                        f"_copyto(st[{row0 + j}], {src}, where={mask})")
                continue
            self._emit_expr_dag(body2, memo2, conv2, [nxt])
            val = self._staged(body2, self._get(memo2, nxt))
            for j in range(L):
                lk = self._limb(val, j)
                src = lk[1] if lk[0] == "e" else repr(lk[1])
                commits.append(f"st[{row0 + j}] = {src}")

        wm = 0
        for mem, writes in nl.mem_writes.items():
            row0, L = self.be.mem_slot[mem]
            depth = mem.depth
            pow2 = (depth & (depth - 1)) == 0
            for wr in writes:
                roots_w = [wr.addr, wr.data] + (
                    [wr.cond] if wr.cond is not None else [])
                self._emit_expr_dag(body2, memo2, conv2, roots_w)
                vc = self._get(memo2, wr.cond) if wr.cond is not None else None
                if vc is not None and vc.cls == "k" and vc.k == 0:
                    continue
                va = self._staged(body2, self._get(memo2, wr.addr))
                vd = self._staged(body2, self._get(memo2, wr.data))
                covered = depth >= (1 << wr.addr.width)
                masks: List[str] = []
                if vc is not None and vc.cls != "k":
                    masks.append(self._as_bool(body2, vc)
                                 if vc.cls == "b" else
                                 f"({vc.exprs[0]}) != {self._K(0)}")
                addr_const = va.cls == "k"
                if addr_const and va.k >= depth:
                    continue
                if not addr_const and not (pow2 and covered):
                    masks.append(f"({va.exprs[0]}) < {self._K(depth)}")
                mexpr = None
                if masks:
                    mvar = f"_wm{wm}"
                    wm += 1
                    body2.append(f"{mvar} = " + " & ".join(
                        f"({m})" for m in masks))
                    mexpr = mvar
                for j in range(L):
                    ld = self._limb(vd, j)
                    dsrc = ld[1] if ld[0] == "e" else repr(ld[1])
                    dst = f"M{row0 + j}"
                    if mexpr is None:
                        if addr_const:
                            commits.append(f"{dst}[{va.k}] = {dsrc}")
                        else:
                            commits.append(f"{dst}[{va.exprs[0]}, ln] = {dsrc}")
                    else:
                        didx = f"{dsrc}[{mexpr}]" if ld[0] == "e" else dsrc
                        if addr_const:
                            commits.append(
                                f"{dst}[{va.k}, ln[{mexpr}]] = {didx}")
                        else:
                            commits.append(
                                f"{dst}[({va.exprs[0]})[{mexpr}], "
                                f"ln[{mexpr}]] = {didx}")

        lines: List[str] = [
            "# Auto-generated by repro.hdl.sim.batched; do not edit.",
            "# Free variables (np, _U64, _Z64, _u8, _where, _minimum,",
            "# _popcount, _shl_u, _shr_u, _pack, _unpack, _shl_o, _shr_o)",
            "# are injected at exec time; K holds pre-broadcast (lanes,)",
            "# uint64 constant arrays, bound to locals in each prologue.",
        ]
        eval_body = self._dce(body, [])
        step_body = self._dce(body2, commits) + commits
        for name, fbody in (("eval_comb", eval_body), ("step", step_body)):
            lines.append(f"def {name}(st, mems, env, ln, K):")
            for ln_ in (self._prologue(fbody) + fbody) or ["pass"]:
                lines.append(f"    {ln_}")
            lines.append("")
        kvalues = [v for v, _ in sorted(self.kpool.items(),
                                        key=lambda kv: kv[1])]
        return "\n".join(lines), kvalues


class BatchedBackend:
    """Netlist compiled to limb-vectorised numpy code over N lanes."""

    def __init__(self, netlist: Netlist):
        global _cache_hits, _cache_misses
        _require_numpy()
        self.netlist = netlist
        self.state_slot: Dict[Signal, Tuple[int, int]] = {}
        self.comb_slot: Dict[Signal, Tuple[int, int]] = {}
        self.mem_slot: Dict[Mem, Tuple[int, int]] = {}

        row = 0
        for sig in list(netlist.inputs) + list(netlist.regs):
            L = _nlimbs(sig.width)
            self.state_slot[sig] = (row, L)
            row += L
        self.n_state_rows = row
        row = 0
        for sig in netlist.comb:
            L = _nlimbs(sig.width)
            self.comb_slot[sig] = (row, L)
            row += L
        self.n_env_rows = row
        row = 0
        for mem in netlist.mems:
            L = _nlimbs(mem.width)
            self.mem_slot[mem] = (row, L)
            row += L

        fp = netlist.fingerprint()
        cached = _BATCH_CACHE.get(fp)
        if cached is not None:
            _cache_hits += 1
            _BATCH_CACHE.move_to_end(fp)
            self.source, self._eval_comb, self._step, self.kvalues = cached
            return
        _cache_misses += 1
        self.source, self.kvalues = _Emitter(self).generate()
        namespace = _make_namespace()
        exec(compile(self.source, f"<batched:{netlist.root.path}>", "exec"),
             namespace)
        self._eval_comb = namespace["eval_comb"]
        self._step = namespace["step"]
        _BATCH_CACHE[fp] = (self.source, self._eval_comb, self._step,
                            self.kvalues)
        while len(_BATCH_CACHE) > _CACHE_CAPACITY:
            _BATCH_CACHE.popitem(last=False)

    # -- storage ----------------------------------------------------------------
    def new_state(self, lanes: int):
        st = np.zeros((self.n_state_rows, lanes), dtype=np.uint64)
        for reg in self.netlist.regs:
            if reg.init:
                row0, L = self.state_slot[reg]
                for j in range(L):
                    st[row0 + j] = (reg.init >> (64 * j)) & _M64
        return st

    def new_env(self, lanes: int):
        return np.zeros((self.n_env_rows, lanes), dtype=np.uint64)

    def new_mems(self, lanes: int):
        out = []
        for mem in self.netlist.mems:
            for j in range(_nlimbs(mem.width)):
                col = np.fromiter(
                    ((v >> (64 * j)) & _M64 for v in mem.init),
                    dtype=np.uint64, count=mem.depth,
                )
                out.append(np.repeat(col[:, None], lanes, axis=1))
        return out

    def new_consts(self, lanes: int):
        """Pre-broadcast constant arrays referenced by the generated code."""
        return [np.full(lanes, v, dtype=np.uint64) for v in self.kvalues]

    def eval_comb(self, state, mems, env, ln, consts) -> None:
        self._eval_comb(state, mems, env, ln, consts)

    def step(self, state, mems, env, ln, consts) -> None:
        self._step(state, mems, env, ln, consts)


SignalLike = Union[Signal, str]


class BatchSimulator:
    """Testbench driver over N lanes of one design.

    Mirrors the :class:`~repro.hdl.sim.engine.Simulator` API with an
    explicit ``lane`` coordinate; ``poke_all``/``peek_all`` address every
    lane at once.  All lanes share one clock: ``step`` advances each lane
    one cycle.
    """

    def __init__(self, design: Union[Module, Netlist], lanes: int = 1,
                 fault_targets=None, fault_plan=None,
                 tag_tracking: bool = False, lattice=None,
                 tag_precise: bool = True, tag_check_downgrades: bool = True,
                 tag_audit: str = "full"):
        _require_numpy()
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if isinstance(design, Module):
            self.netlist = elaborate(design)
        else:
            self.netlist = design
        self.lanes = lanes
        self.cycle = 0
        # Tag synthesis first (the shadow nets become part of the compiled
        # program and fault-targetable), then fault instrumentation —
        # mirroring the engine Simulator's ordering.
        self.tag_plan = None
        self.tags = None
        if tag_tracking:
            from ...ifc.synth import synthesize_tags

            if lattice is None:
                raise ValueError(
                    "tag_tracking=True needs the security lattice the "
                    "design's labels live in (pass lattice=...)")
            self.netlist, self.tag_plan = synthesize_tags(
                self.netlist, lattice, check_downgrades=tag_check_downgrades,
                precise=tag_precise, audit=tag_audit)
        # Instrument before backend construction so the compiled program
        # includes the fault-control inputs (see repro.faults.plan).  The
        # engine's batched path pre-instruments and hands controls over by
        # assigning ``fault_controls`` after construction instead.
        self.fault_controls = {}
        self._fault_applier = None
        if fault_plan is not None and fault_targets is None:
            fault_targets = fault_plan.signal_targets()
        if fault_targets:
            from ...faults.plan import instrument

            self.netlist, self.fault_controls = instrument(
                self.netlist, fault_targets)
        self._be = BatchedBackend(self.netlist)
        self._input_set = frozenset(self.netlist.inputs)
        self._ln = np.arange(lanes, dtype=np.intp)
        self._state = self._be.new_state(lanes)
        self._env = self._be.new_env(lanes)
        self._mems = self._be.new_mems(lanes)
        self._consts = self._be.new_consts(lanes)
        self._dirty = True
        self._watchers = []
        if self.tag_plan is not None:
            from ...ifc.synth import TagView

            self.tags = TagView(self, self.tag_plan)
        if fault_plan is not None:
            self.load_fault_plan(fault_plan)

    # -- resolution -------------------------------------------------------------
    def _resolve(self, sig: SignalLike) -> Signal:
        if isinstance(sig, Signal):
            return sig
        return self.netlist.signal_by_path(sig)

    def _resolve_mem(self, mem: Union[Mem, str]) -> Mem:
        if isinstance(mem, Mem):
            return mem
        return self.netlist.mem_by_path(mem)

    # -- fault injection ---------------------------------------------------------
    def load_fault_plan(self, plan) -> None:
        """Arm a fault plan; lane-targeted faults hit only their lane."""
        from ...faults.plan import FaultApplier

        self._fault_applier = FaultApplier(
            plan, self.fault_controls, self.netlist, lanes=self.lanes)

    def clear_fault_plan(self) -> None:
        self._fault_applier = None
        for ctrl in self.fault_controls.values():
            for sig in (ctrl.flip, ctrl.stuck1, ctrl.stuck0):
                self.poke_all(sig, 0)

    @property
    def fault_events(self) -> int:
        ap = self._fault_applier
        return ap.events if ap is not None else 0

    def _apply_faults(self, ap) -> None:
        from ...faults.plan import faulted_value

        updates, mem_ops = ap.at(self.cycle)
        for sig, value in updates.items():
            self.poke_all(sig, value)
        for mem, addr, kind, mask, lane in mem_ops:
            lanes = range(self.lanes) if lane is None else (lane,)
            for ln in lanes:
                cur = self.peek_mem(mem, addr, ln)
                self.poke_mem(mem, addr,
                              faulted_value(cur, kind, mask, mem.width),
                              lane=ln)

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} out of range (lanes={self.lanes})")

    # -- poke/peek --------------------------------------------------------------
    def _checked_input(self, sig: SignalLike, value: int) -> Signal:
        sig = self._resolve(sig)
        if not 0 <= value <= mask_for(sig.width):
            raise ValueError(
                f"value {value} does not fit {sig.width}-bit signal {sig.path}"
            )
        if sig not in self._input_set:
            raise HdlError(f"{sig.path} is not a free input of this netlist")
        return sig

    def poke(self, sig: SignalLike, lane: int, value: int) -> None:
        """Drive a free input on one lane."""
        sig = self._checked_input(sig, value)
        self._check_lane(lane)
        row0, L = self._be.state_slot[sig]
        for j in range(L):
            self._state[row0 + j, lane] = (value >> (64 * j)) & _M64
        self._dirty = True

    def poke_all(self, sig: SignalLike, value) -> None:
        """Drive a free input on every lane.

        ``value`` is either one int (broadcast) or a sequence of
        per-lane ints of length ``lanes``.
        """
        if isinstance(value, int):
            sig = self._checked_input(sig, value)
            row0, L = self._be.state_slot[sig]
            for j in range(L):
                self._state[row0 + j] = (value >> (64 * j)) & _M64
        else:
            values = list(value)
            if len(values) != self.lanes:
                raise ValueError(
                    f"expected {self.lanes} per-lane values, got {len(values)}"
                )
            sig = self._resolve(sig)
            for lane, v in enumerate(values):
                self.poke(sig, lane, v)
            return
        self._dirty = True

    def _slot_of(self, sig: Signal) -> Tuple[object, int, int]:
        if sig in self._be.state_slot:
            row0, L = self._be.state_slot[sig]
            return self._state, row0, L
        row0, L = self._be.comb_slot[sig]
        return self._env, row0, L

    def peek(self, sig: SignalLike, lane: int = 0) -> int:
        """Read any signal's settled value on one lane."""
        sig = self._resolve(sig)
        self._check_lane(lane)
        self._settle()
        arr, row0, L = self._slot_of(sig)
        value = 0
        for j in range(L):
            value |= int(arr[row0 + j, lane]) << (64 * j)
        return value

    def peek_all(self, sig: SignalLike) -> List[int]:
        """Read a signal on every lane; returns a list of ints."""
        sig = self._resolve(sig)
        self._settle()
        arr, row0, L = self._slot_of(sig)
        out = [0] * self.lanes
        for j in range(L):
            row = arr[row0 + j]
            shift = 64 * j
            for lane in range(self.lanes):
                out[lane] |= int(row[lane]) << shift
        return out

    def values(self, lane: int = 0) -> List[int]:
        """Settled values of inputs, registers, then comb signals on one
        lane — the bulk-observation primitive behind
        :meth:`~repro.hdl.sim.engine.Simulator.values`.

        One column copy per storage array instead of one :meth:`peek`
        (resolve + settle + per-limb reads) per signal.
        """
        self._check_lane(lane)
        self._settle()
        state_col = self._state[:, lane].tolist()
        env_col = self._env[:, lane].tolist()
        out: List[int] = []
        nl = self.netlist
        for sigs, col, slots in (
                (list(nl.inputs) + list(nl.regs), state_col,
                 self._be.state_slot),
                (nl.comb, env_col, self._be.comb_slot)):
            for sig in sigs:
                row0, L = slots[sig]
                if L == 1:
                    out.append(col[row0])
                else:
                    value = 0
                    for j in range(L):
                        value |= col[row0 + j] << (64 * j)
                    out.append(value)
        return out

    def peek_mem(self, mem: Union[Mem, str], addr: int, lane: int = 0) -> int:
        mem = self._resolve_mem(mem)
        self._check_lane(lane)
        row0, L = self._be.mem_slot[mem]
        value = 0
        for j in range(L):
            value |= int(self._mems[row0 + j][addr, lane]) << (64 * j)
        return value

    def poke_mem(self, mem: Union[Mem, str], addr: int, value: int,
                 lane: Optional[int] = None) -> None:
        """Backdoor memory write (one lane, or all lanes when ``lane`` is
        None)."""
        mem = self._resolve_mem(mem)
        if not 0 <= value <= mask_for(mem.width):
            raise ValueError(f"value {value} does not fit memory {mem.path}")
        row0, L = self._be.mem_slot[mem]
        for j in range(L):
            limb = (value >> (64 * j)) & _M64
            if lane is None:
                self._mems[row0 + j][addr] = limb
            else:
                self._check_lane(lane)
                self._mems[row0 + j][addr, lane] = limb
        self._dirty = True

    # -- clocking ---------------------------------------------------------------
    def _settle(self) -> None:
        if not self._dirty:
            return
        self._be.eval_comb(self._state, self._mems, self._env, self._ln,
                           self._consts)
        self._dirty = False

    def value_signals(self) -> List[Signal]:
        """Every stateful and combinational signal, in :meth:`values` order
        (inputs, then registers, then combinational signals)."""
        return (list(self.netlist.inputs) + list(self.netlist.regs)
                + list(self.netlist.comb))

    def add_watcher(self, fn) -> None:
        """Register a callable invoked (with this simulator, all lanes
        settled) before each step — mirrors the engine Simulator so traces
        and trackers work on a standalone batched testbench."""
        self._watchers.append(fn)

    def remove_watcher(self, fn) -> None:
        """Detach a watcher previously registered with ``add_watcher``."""
        if fn in self._watchers:
            self._watchers.remove(fn)

    def step(self, n: int = 1) -> None:
        """Advance all lanes ``n`` clock cycles."""
        step = self._be._step
        ap = self._fault_applier
        if ap is None and not self._watchers:
            st, mems, env, ln, K = (self._state, self._mems, self._env,
                                    self._ln, self._consts)
            for _ in range(n):
                step(st, mems, env, ln, K)
            self.cycle += n
        else:
            # Faults poke state/mem arrays in place, so re-read the
            # references each iteration and track the cycle per step.
            for _ in range(n):
                if ap is not None:
                    self._apply_faults(ap)
                if self._watchers:
                    self._settle()
                    for w in self._watchers:
                        w(self)
                step(self._state, self._mems, self._env, self._ln,
                     self._consts)
                self.cycle += 1
                self._dirty = True
        if n:
            self._dirty = True

    def reset(self) -> None:
        self._state = self._be.new_state(self.lanes)
        self._env = self._be.new_env(self.lanes)
        self._mems = self._be.new_mems(self.lanes)
        self.cycle = 0
        self._dirty = True
        if self.tags is not None:
            self.tags.reseed()
        if self._fault_applier is not None:
            self._fault_applier.reset()
