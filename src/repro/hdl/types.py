"""Hardware value types for the security-typed eDSL.

The eDSL is deliberately small: every signal is an unsigned bit vector
(``UInt``) of a fixed width.  ``Bool`` is a one-bit ``UInt``.  This mirrors
the subset of Chisel that the DAC'19 AES accelerator uses.
"""

from __future__ import annotations


def mask_for(width: int) -> int:
    """Return the bit mask ``2**width - 1`` for a ``width``-bit value."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


def fits(value: int, width: int) -> bool:
    """Return True if ``value`` is representable in ``width`` unsigned bits."""
    return 0 <= value <= mask_for(width)


def check_width(width: int) -> int:
    """Validate a signal width and return it."""
    if not isinstance(width, int) or isinstance(width, bool):
        raise TypeError(f"width must be an int, got {type(width).__name__}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return width


def bit_length_for(n_values: int) -> int:
    """Width needed to index ``n_values`` distinct values (at least 1 bit)."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    return max(1, (n_values - 1).bit_length())


class UInt:
    """A width-annotated unsigned integer *type* descriptor.

    Instances are used purely as type tags (``UInt(8)``); the simulator
    represents runtime values as plain Python ints.
    """

    __slots__ = ("width",)

    def __init__(self, width: int):
        self.width = check_width(width)

    def __repr__(self) -> str:
        return f"UInt({self.width})"

    def mask(self) -> int:
        return mask_for(self.width)


def Bool() -> UInt:
    """One-bit unsigned type."""
    return UInt(1)
