"""repro.hdl — a small security-typed hardware eDSL with a cycle simulator.

This package is the substrate the DAC'19 AES case study is built on: a
Chisel-like construction API (modules, signals, registers, memories,
``when`` blocks), elaboration into a netlist IR, and two simulation
backends.  Security labels attach to signals and memories and are
consumed by :mod:`repro.ifc`.
"""

from .elaborate import elaborate, elaborate_shallow
from .memory import Mem
from .module import Module, elsewhen, otherwise, when
from .netlist import CombLoopError, Netlist
from .nodes import (
    BinaryOp,
    Concat,
    Const,
    Downgrade,
    HdlError,
    MemRead,
    Mux,
    Node,
    Slice,
    UnaryOp,
    WidthError,
    all_of,
    any_of,
    cat,
    declassify,
    endorse,
    lit,
    mux,
    mux_case,
    walk,
)
from .signal import Signal, SignalKind
from .sim import BatchSimulator, Simulator
from .types import Bool, UInt, bit_length_for, mask_for
from .verilog import VerilogWriter, to_verilog

__all__ = [
    "BatchSimulator",
    "BinaryOp",
    "Bool",
    "CombLoopError",
    "Concat",
    "Const",
    "Downgrade",
    "HdlError",
    "Mem",
    "MemRead",
    "Module",
    "Mux",
    "Netlist",
    "Node",
    "Signal",
    "SignalKind",
    "Simulator",
    "Slice",
    "UInt",
    "UnaryOp",
    "VerilogWriter",
    "WidthError",
    "all_of",
    "any_of",
    "bit_length_for",
    "cat",
    "declassify",
    "elaborate",
    "elaborate_shallow",
    "elsewhen",
    "endorse",
    "lit",
    "mask_for",
    "mux",
    "mux_case",
    "otherwise",
    "to_verilog",
    "walk",
    "when",
]
