"""Signals: the named, stateful leaves of a hardware design.

A :class:`Signal` is itself an expression :class:`~repro.hdl.nodes.Node`
(kind ``"signal"``), so signals can be used directly inside expressions.

Assignment is recorded, not executed: ``sig <<= expr`` appends a
*conditional driver* ``(conditions, expr)`` where ``conditions`` is the
tuple of ``when`` conditions active at the point of assignment.  During
elaboration the driver list folds into a single mux tree (last assignment
wins, as in Chisel).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from . import module as _module_ctx
from .nodes import HdlError, Node, _coerce
from .types import check_width, mask_for


class SignalKind(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    WIRE = "wire"
    REG = "reg"


class Signal(Node):
    """A named hardware signal (port, wire, or register)."""

    __slots__ = (
        "name",
        "kind_",
        "owner",
        "label",
        "init",
        "drivers",
        "default",
        "meta",
    )
    kind = "signal"

    def __init__(
        self,
        name: str,
        width: int,
        kind_: SignalKind,
        owner,
        label=None,
        init: int = 0,
        default=None,
    ):
        self.name = name
        self.width = check_width(width)
        self.kind_ = kind_
        self.owner = owner
        self.label = label
        if not 0 <= init <= mask_for(width):
            raise HdlError(f"init value {init} does not fit in {width} bits")
        self.init = init
        self.drivers: List[Tuple[Tuple[Node, ...], Node]] = []
        self.default = None if default is None else _coerce(default, width)
        self.meta = {}

    # -- naming -------------------------------------------------------------
    @property
    def path(self) -> str:
        """Hierarchical name, e.g. ``top.pipe.stage3.data``."""
        if self.owner is None:
            return self.name
        return f"{self.owner.path}.{self.name}"

    # -- assignment recording -------------------------------------------------
    def assign(self, expr, conditions: Optional[Tuple[Node, ...]] = None) -> None:
        """Record a (possibly conditional) driver for this signal."""
        if self.kind_ is SignalKind.INPUT and self.owner is not None and self.owner.parent is None:
            raise HdlError(f"cannot assign top-level input {self.path}")
        expr = _coerce(expr, self.width)
        if expr.width > self.width:
            raise HdlError(
                f"driver width {expr.width} exceeds signal width {self.width} "
                f"for {self.path}"
            )
        if expr.width < self.width:
            expr = expr.zext(self.width)
        if conditions is None:
            conditions = _module_ctx.current_conditions()
        self.drivers.append((conditions, expr))

    def __ilshift__(self, expr):
        self.assign(expr)
        return self

    # -- expression protocol ----------------------------------------------------
    def operands(self):
        return ()

    def eval_op(self, vals):  # pragma: no cover - resolved via simulator env
        raise RuntimeError("Signal value is resolved by the simulator environment")

    def __repr__(self) -> str:
        return f"Signal({self.path}, w={self.width}, {self.kind_.value})"
