"""Elaboration: folding conditional drivers and flattening the hierarchy.

Two entry points:

* :func:`elaborate` — flatten a whole module subtree into one
  :class:`~repro.hdl.netlist.Netlist` (what the simulator runs);
* :func:`elaborate_shallow` — elaborate one module with its direct
  children treated as opaque, labelled black boxes (what the IFC checker
  uses for *modular* verification: child input ports become checked
  sinks, child output ports become free sources).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .memory import Mem
from .module import Module
from .netlist import MemWrite, Netlist, topo_sort_comb
from .nodes import HdlError, Mux, Node, all_of
from .signal import Signal, SignalKind


def fold_drivers(sig: Signal) -> Optional[Node]:
    """Fold a signal's recorded conditional drivers into one expression.

    Later assignments take priority (Chisel "last connect" semantics).
    Registers implicitly hold their current value; wires and outputs must
    either have an unconditional base assignment or a declared default.
    """
    if sig.kind_ is SignalKind.REG:
        result: Optional[Node] = sig
    else:
        result = sig.default

    for conds, expr in sig.drivers:
        if not conds:
            result = expr
        else:
            if result is None:
                raise HdlError(
                    f"signal {sig.path} is only conditionally driven and has "
                    f"no default; add an unconditional assignment or default"
                )
            result = Mux(all_of(*conds), expr, result)
    return result


def fold_mem_writes(mem: Mem) -> List[MemWrite]:
    """Fold each recorded write's condition tuple into a single condition."""
    folded = []
    for conds, addr, data, tag in mem.writes:
        cond = all_of(*conds) if conds else None
        folded.append(MemWrite(cond, addr, data, tag))
    return folded


def _build_netlist(
    root: Module,
    signals: Iterable[Signal],
    mems: Iterable[Mem],
    free: Iterable[Signal],
    ignore_free_drivers: bool = False,
    read_only_mems: Iterable[Mem] = (),
) -> Netlist:
    nl = Netlist(root)
    free_set = set(free)
    signals = list(signals)
    nl.signals = signals
    read_only = list(read_only_mems)
    nl.mems = list(mems) + read_only
    read_only_set = set(id(m) for m in read_only)

    for sig in signals:
        if sig in free_set:
            nl.inputs.append(sig)
            if sig.drivers and not ignore_free_drivers:
                raise HdlError(f"free signal {sig.path} must not have drivers")
            continue
        if sig.kind_ is SignalKind.REG:
            nl.regs.append(sig)
            folded = fold_drivers(sig)
            assert folded is not None
            nl.reg_next[sig] = folded
        else:
            folded = fold_drivers(sig)
            if folded is None:
                raise HdlError(f"signal {sig.path} has no driver")
            nl.drivers[sig] = folded
            nl.comb.append(sig)

    for mem in nl.mems:
        if id(mem) in read_only_set:
            nl.mem_writes[mem] = []
        else:
            nl.mem_writes[mem] = fold_mem_writes(mem)

    state = set(nl.regs) | set(nl.inputs)
    nl.comb = topo_sort_comb(nl.comb, nl.drivers, state)

    _check_mem_reachability(nl)
    return nl


def _check_mem_reachability(nl: Netlist) -> None:
    """Every memory referenced by an expression must be part of the netlist."""
    known = set(id(m) for m in nl.mems)
    for node in nl.all_nodes():
        if node.kind == "memread" and id(node.mem) not in known:
            raise HdlError(
                f"expression reads memory {node.mem.path} which is outside "
                f"the elaborated scope"
            )


def elaborate(root: Module) -> Netlist:
    """Flatten ``root`` and all its descendants into a netlist."""
    modules = root.all_modules()
    signals: List[Signal] = []
    mems: List[Mem] = []
    for mod in modules:
        signals.extend(mod.signals)
        mems.extend(mod.mems)

    free = [
        s for s in root.signals
        if s.kind_ is SignalKind.INPUT
    ]
    return _build_netlist(root, signals, mems, free)


def elaborate_shallow(module: Module) -> Netlist:
    """Elaborate ``module`` treating direct children as opaque boxes.

    The returned netlist contains: the module's own signals and memories,
    plus each direct child's ports.  Child *outputs* are free sources
    (their internals are not inspected); child *inputs* are ordinary
    driven signals whose declared labels act as flow sinks.  This is the
    modular-checking view: verifying each module once against its port
    labels composes into whole-design security, which is how the
    security-typed-HDL approach scales to the 30-stage pipeline.
    """
    signals: List[Signal] = list(module.signals)
    mems: List[Mem] = list(module.mems)

    free = [s for s in module.signals if s.kind_ is SignalKind.INPUT]
    read_only: List[Mem] = []
    for child in module.children:
        for sig in child.signals:
            if sig.kind_ is SignalKind.INPUT:
                signals.append(sig)
            elif sig.kind_ is SignalKind.OUTPUT:
                signals.append(sig)
                free.append(sig)
        # descendant memories are visible read-only: their writes belong to
        # (and are checked in) the owning module's own shallow elaboration
        for desc in child.all_modules():
            read_only.extend(desc.mems)
    return _build_netlist(module, signals, mems, free, ignore_free_drivers=True,
                          read_only_mems=read_only)
