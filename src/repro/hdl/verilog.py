"""Verilog-2001 export of elaborated netlists.

Emits a flattened, synthesizable module from a
:class:`~repro.hdl.netlist.Netlist`: every expression node becomes an
SSA-style ``wire`` assignment (so arbitrary sub-expressions stay legal
Verilog), registers become one ``always @(posedge clk)`` block with a
synchronous reset to their init values, and memories become ``reg``
arrays with write processes (ROMs get ``initial`` blocks).

Security metadata survives as comments: labelled signals carry their
label, and ``Downgrade`` markers annotate the declassification /
endorsement points — the reviewable-downgrade story of §3.2.6 remains
visible in the RTL hand-off.

This is deliberately plain structural Verilog: the goal is a clean
bridge from the Python model to standard FPGA/ASIC flows, not a
performance-tuned netlist.
"""

from __future__ import annotations

import re
from typing import Dict, List, Union

from .elaborate import elaborate
from .memory import Mem
from .module import Module
from .netlist import Netlist
from .nodes import Node, walk
from .signal import Signal


def _ident(path: str) -> str:
    """Sanitise a hierarchical path into a Verilog identifier."""
    name = re.sub(r"[^A-Za-z0-9_]", "_", path)
    if re.match(r"^[0-9]", name):
        name = "_" + name
    return name


class VerilogWriter:
    """Emit one flattened Verilog module for a netlist."""

    def __init__(self, design: Union[Module, Netlist],
                 module_name: str = None):
        self.netlist = design if isinstance(design, Netlist) else elaborate(design)
        self.module_name = _ident(module_name or self.netlist.root.name)
        self._names: Dict[int, str] = {}
        self._counter = 0
        self._lines: List[str] = []

    # -- naming ------------------------------------------------------------
    def _signal_name(self, sig: Signal) -> str:
        root = self.netlist.root.path + "."
        path = sig.path
        if path.startswith(root):
            path = path[len(root):]
        return _ident(path)

    def _mem_name(self, mem: Mem) -> str:
        root = self.netlist.root.path + "."
        path = mem.path
        if path.startswith(root):
            path = path[len(root):]
        return _ident(path)

    def _node_name(self, node: Node) -> str:
        name = self._names.get(id(node))
        if name is None:
            self._counter += 1
            name = f"n{self._counter}"
            self._names[id(node)] = name
        return name

    # -- expression emission ----------------------------------------------------
    def _emit_nodes(self, roots: List[Node], out: List[str]) -> None:
        for node in walk(roots):
            nid = id(node)
            if nid in self._names:
                continue
            kind = node.kind
            if kind == "const":
                self._names[nid] = f"{node.width}'h{node.value:x}"
                continue
            if kind == "signal":
                self._names[nid] = self._signal_name(node)
                continue
            expr = self._render(node)
            name = self._node_name(node)
            out.append(f"  wire [{node.width - 1}:0] {name} = {expr};")

    def _ref(self, node: Node) -> str:
        return self._names[id(node)]

    def _render(self, node: Node) -> str:
        kind = node.kind
        if kind == "unary":
            a = self._ref(node.a)
            return {
                "not": f"~{a}",
                "redor": f"|{a}",
                "redand": f"&{a}",
                "redxor": f"^{a}",
            }[node.op]
        if kind == "binary":
            a, b = self._ref(node.a), self._ref(node.b)
            sym = {
                "and": "&", "or": "|", "xor": "^",
                "add": "+", "sub": "-", "mul": "*",
                "eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                "gt": ">", "ge": ">=", "shl": "<<", "shr": ">>",
            }[node.op]
            return f"{a} {sym} {b}"
        if kind == "mux":
            return (f"{self._ref(node.sel)} ? {self._ref(node.if_true)} : "
                    f"{self._ref(node.if_false)}")
        if kind == "slice":
            if node.a.kind == "const":
                # part-select of a literal is illegal Verilog; fold it
                value = (node.a.value >> node.lo) & ((1 << node.width) - 1)
                return f"{node.width}'h{value:x}"
            if node.lo == node.hi:
                return f"{self._ref(node.a)}[{node.lo}]"
            return f"{self._ref(node.a)}[{node.hi}:{node.lo}]"
        if kind == "concat":
            parts = ", ".join(self._ref(p) for p in node.parts)
            return f"{{{parts}}}"
        if kind == "memread":
            return f"{self._mem_name(node.mem)}[{self._ref(node.addr)}]"
        if kind == "downgrade":
            return (f"{self._ref(node.a)} /* {node.kind_} "
                    f"(reviewed downgrade) */")
        raise AssertionError(kind)

    # -- module emission -----------------------------------------------------------
    def emit(self) -> str:
        nl = self.netlist
        ports = ["input wire clk", "input wire rst"]
        for sig in nl.inputs:
            decl = f"input wire [{sig.width - 1}:0] {self._signal_name(sig)}"
            if sig.label is not None:
                decl = f"/* label: {sig.label!r} */ {decl}"
            ports.append(decl)
        from .signal import SignalKind

        out_sigs = [s for s in nl.comb if s.kind_ is SignalKind.OUTPUT
                    and s.owner is nl.root]
        for sig in out_sigs:
            ports.append(f"output wire [{sig.width - 1}:0] "
                         f"{self._signal_name(sig)}")

        body: List[str] = []

        # registers
        for reg in nl.regs:
            label = f"  // label: {reg.label!r}" if reg.label is not None else ""
            body.append(f"  reg [{reg.width - 1}:0] "
                        f"{self._signal_name(reg)};{label}")
        # memories
        for mem in nl.mems:
            label = f"  // label: {mem.label!r}" if mem.label is not None else ""
            body.append(f"  reg [{mem.width - 1}:0] {self._mem_name(mem)} "
                        f"[0:{mem.depth - 1}];{label}")

        # combinational SSA wires + named signal assigns
        roots = nl.all_roots()
        expr_lines: List[str] = []
        self._emit_nodes(roots, expr_lines)
        body.extend(expr_lines)
        for sig in nl.comb:
            if sig in set(nl.inputs):
                continue
            driver = nl.drivers[sig]
            name = self._signal_name(sig)
            if sig in out_sigs:
                body.append(f"  assign {name} = {self._ref(driver)};")
            else:
                body.append(f"  wire [{sig.width - 1}:0] {name} = "
                            f"{self._ref(driver)};")

        # sequential block
        seq: List[str] = ["  always @(posedge clk) begin",
                          "    if (rst) begin"]
        for reg in nl.regs:
            seq.append(f"      {self._signal_name(reg)} <= "
                       f"{reg.width}'h{reg.init:x};")
        seq.append("    end else begin")
        for reg in nl.regs:
            seq.append(f"      {self._signal_name(reg)} <= "
                       f"{self._ref(nl.reg_next[reg])};")
        for mem, writes in nl.mem_writes.items():
            for w in writes:
                guard = (f"if ({self._ref(w.cond)}) "
                         if w.cond is not None else "")
                seq.append(f"      {guard}{self._mem_name(mem)}"
                           f"[{self._ref(w.addr)}] <= {self._ref(w.data)};")
        seq.append("    end")
        seq.append("  end")

        # ROM / memory initial contents
        init: List[str] = []
        for mem in nl.mems:
            if any(mem.init):
                init.append("  initial begin")
                for i, v in enumerate(mem.init):
                    if v:
                        init.append(f"    {self._mem_name(mem)}[{i}] = "
                                    f"{mem.width}'h{v:x};")
                init.append("  end")

        # comb wires appear before use: _emit_nodes handles node order, but a
        # named comb wire may be referenced by nodes emitted earlier; Verilog
        # wires are order-insensitive, so this is fine.
        header = [
            f"// Generated by repro.hdl.verilog from {nl.root.path}",
            f"// {len(nl.regs)} registers, {len(nl.mems)} memories, "
            f"{len(nl.comb)} combinational signals",
            f"module {self.module_name} (",
            ",\n".join(f"  {p}" for p in ports),
            ");",
        ]
        footer = ["endmodule", ""]
        return "\n".join(header + body + seq + init + footer)


def to_verilog(design: Union[Module, Netlist],
               module_name: str = None) -> str:
    """Convenience: emit Verilog source for a module or netlist."""
    return VerilogWriter(design, module_name).emit()
