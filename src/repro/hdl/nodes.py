"""Expression IR for the security-typed hardware eDSL.

Expressions form a DAG of :class:`Node` objects.  Leaves are constants
(:class:`Const`) and signal references (:class:`SignalRef`); interior nodes
are bit-vector operators, multiplexers, slices, concatenations, memory
reads, and explicit downgrade (declassify/endorse) markers.

Design notes
------------
* All values are unsigned bit vectors; every node has a fixed ``width``.
* Operator overloading covers the bitwise/arithmetic operators that do not
  interfere with Python object semantics (``&``, ``|``, ``^``, ``~``,
  ``+``, ``-``, ``<<``, ``>>``).  Comparisons are explicit methods
  (``a.eq(b)``, ``a.lt(b)``, ...) so that Python ``==`` keeps its normal
  identity meaning on IR objects — important because nodes are stored in
  dicts and sets throughout the elaborator and checker.
* Nodes never evaluate themselves recursively; the simulator supplies
  operand values.  This keeps evaluation strategies (interpreted,
  compiled) out of the IR.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .types import check_width, mask_for


class HdlError(Exception):
    """Base class for errors raised while constructing or elaborating HDL."""


class WidthError(HdlError):
    """Raised when operand widths are inconsistent."""


class UnknownSignalError(HdlError, KeyError):
    """A signal path did not resolve in a netlist or module.

    Subclasses both :class:`HdlError` (the documented error surface of the
    simulation backends) and :class:`KeyError` (what lookups historically
    raised), so existing ``except KeyError`` call sites keep working.
    """

    def __init__(self, path: str, scope: str):
        self.path = path
        self.scope = scope
        super().__init__(f"no signal {path!r} in {scope}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class UnknownMemoryError(HdlError, KeyError):
    """A memory path did not resolve in a netlist."""

    def __init__(self, path: str, scope: str):
        self.path = path
        self.scope = scope
        super().__init__(f"no memory {path!r} in {scope}")

    def __str__(self) -> str:
        return self.args[0]


def _coerce(value, width_hint: Optional[int] = None) -> "Node":
    """Coerce a Python int (or Node) into a :class:`Node`."""
    if isinstance(value, Node):
        return value
    if isinstance(value, bool):
        return Const(int(value), 1)
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"negative literal {value} not representable")
        width = width_hint if width_hint is not None else max(1, value.bit_length())
        if value > mask_for(width):
            raise WidthError(f"literal {value} does not fit in {width} bits")
        return Const(value, width)
    raise TypeError(f"cannot use {type(value).__name__} as a hardware value")


class Value:
    """Mixin giving HDL expressions their operator sugar.

    Subclasses must provide a ``width`` attribute.
    """

    width: int

    # -- bitwise -----------------------------------------------------------
    def __and__(self, other):
        return BinaryOp("and", self, _coerce(other, self.width))

    def __rand__(self, other):
        return BinaryOp("and", _coerce(other, self.width), self)

    def __or__(self, other):
        return BinaryOp("or", self, _coerce(other, self.width))

    def __ror__(self, other):
        return BinaryOp("or", _coerce(other, self.width), self)

    def __xor__(self, other):
        return BinaryOp("xor", self, _coerce(other, self.width))

    def __rxor__(self, other):
        return BinaryOp("xor", _coerce(other, self.width), self)

    def __invert__(self):
        return UnaryOp("not", self)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other):
        return BinaryOp("add", self, _coerce(other, self.width))

    def __radd__(self, other):
        return BinaryOp("add", _coerce(other, self.width), self)

    def __sub__(self, other):
        return BinaryOp("sub", self, _coerce(other, self.width))

    def __rsub__(self, other):
        return BinaryOp("sub", _coerce(other, self.width), self)

    def __lshift__(self, amount):
        return BinaryOp("shl", self, _coerce(amount))

    def __rshift__(self, amount):
        return BinaryOp("shr", self, _coerce(amount))

    # -- comparisons (explicit methods; see module docstring) ---------------
    def eq(self, other) -> "BinaryOp":
        return BinaryOp("eq", self, _coerce(other, self.width))

    def ne(self, other) -> "BinaryOp":
        return BinaryOp("ne", self, _coerce(other, self.width))

    def lt(self, other) -> "BinaryOp":
        return BinaryOp("lt", self, _coerce(other, self.width))

    def le(self, other) -> "BinaryOp":
        return BinaryOp("le", self, _coerce(other, self.width))

    def gt(self, other) -> "BinaryOp":
        return BinaryOp("gt", self, _coerce(other, self.width))

    def ge(self, other) -> "BinaryOp":
        return BinaryOp("ge", self, _coerce(other, self.width))

    # -- structure ----------------------------------------------------------
    def __getitem__(self, idx) -> "Node":
        """Verilog-style bit select ``x[i]`` and part select ``x[hi:lo]``."""
        if isinstance(idx, slice):
            if idx.step is not None:
                raise ValueError("bit slices do not support a step")
            hi, lo = idx.start, idx.stop
            if hi is None:
                hi = self.width - 1
            if lo is None:
                lo = 0
            return Slice(self, hi, lo)
        if isinstance(idx, int):
            return Slice(self, idx, idx)
        raise TypeError(f"invalid bit index {idx!r}")

    def bit(self, i: int) -> "Node":
        return Slice(self, i, i)

    def bits(self, hi: int, lo: int) -> "Node":
        return Slice(self, hi, lo)

    def zext(self, width: int) -> "Node":
        """Zero-extend to ``width`` bits (no-op if already that wide)."""
        if width < self.width:
            raise WidthError(f"zext target {width} narrower than {self.width}")
        if width == self.width:
            return self  # type: ignore[return-value]
        return Concat([Const(0, width - self.width), self])

    def trunc(self, width: int) -> "Node":
        """Truncate to the low ``width`` bits."""
        if width > self.width:
            raise WidthError(f"trunc target {width} wider than {self.width}")
        if width == self.width:
            return self  # type: ignore[return-value]
        return Slice(self, width - 1, 0)

    def resize(self, width: int) -> "Node":
        if width >= self.width:
            return self.zext(width)
        return self.trunc(width)

    def red_or(self) -> "Node":
        return UnaryOp("redor", self)

    def red_and(self) -> "Node":
        return UnaryOp("redand", self)

    def red_xor(self) -> "Node":
        return UnaryOp("redxor", self)

    def is_zero(self) -> "Node":
        return UnaryOp("not", UnaryOp("redor", self))

    def __bool__(self):
        raise TypeError(
            "hardware values have no Python truth value; use .eq()/.ne() and "
            "mux()/when() for hardware conditionals"
        )


class Node(Value):
    """Base class of all expression IR nodes."""

    __slots__ = ("width",)
    kind = "node"

    def operands(self) -> Tuple["Node", ...]:
        return ()

    def eval_op(self, vals: Sequence[int]) -> int:
        """Evaluate this node given already-evaluated operand values."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} w={self.width}>"


class Const(Node):
    """A literal bit-vector value."""

    __slots__ = ("value",)
    kind = "const"

    def __init__(self, value: int, width: int):
        self.width = check_width(width)
        if not 0 <= value <= mask_for(width):
            raise WidthError(f"constant {value} does not fit in {width} bits")
        self.value = value

    def eval_op(self, vals: Sequence[int]) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Const({self.value}, w={self.width})"


class SignalRef(Node):
    """Reference to a declared signal (leaf of the expression DAG)."""

    __slots__ = ("signal",)
    kind = "ref"

    def __init__(self, signal):
        self.signal = signal
        self.width = signal.width

    def eval_op(self, vals: Sequence[int]) -> int:  # pragma: no cover - sim reads env
        raise RuntimeError("SignalRef is resolved by the simulator environment")

    def __repr__(self) -> str:
        return f"Ref({self.signal.name})"


class UnaryOp(Node):
    __slots__ = ("op", "a")
    kind = "unary"

    _RESULT_WIDTH = {"not": None, "redor": 1, "redand": 1, "redxor": 1}

    def __init__(self, op: str, a):
        if op not in self._RESULT_WIDTH:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.a = _coerce(a)
        rw = self._RESULT_WIDTH[op]
        self.width = self.a.width if rw is None else rw

    def operands(self):
        return (self.a,)

    def eval_op(self, vals: Sequence[int]) -> int:
        a = vals[0]
        if self.op == "not":
            return (~a) & mask_for(self.width)
        if self.op == "redor":
            return 1 if a != 0 else 0
        if self.op == "redand":
            return 1 if a == mask_for(self.a.width) else 0
        if self.op == "redxor":
            return bin(a).count("1") & 1
        raise AssertionError(self.op)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op}, {self.a!r})"


class BinaryOp(Node):
    __slots__ = ("op", "a", "b")
    kind = "binary"

    _CMP = {"eq", "ne", "lt", "le", "gt", "ge"}
    _BITWISE = {"and", "or", "xor"}
    _ARITH = {"add", "sub", "mul"}
    _SHIFT = {"shl", "shr"}

    def __init__(self, op: str, a, b):
        known = self._CMP | self._BITWISE | self._ARITH | self._SHIFT
        if op not in known:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = _coerce(a)
        self.b = _coerce(b)
        if op in self._CMP:
            self.width = 1
        elif op in self._SHIFT:
            self.width = self.a.width
        else:
            self.width = max(self.a.width, self.b.width)

    def operands(self):
        return (self.a, self.b)

    def eval_op(self, vals: Sequence[int]) -> int:
        a, b = vals
        op = self.op
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "add":
            return (a + b) & mask_for(self.width)
        if op == "sub":
            return (a - b) & mask_for(self.width)
        if op == "mul":
            return (a * b) & mask_for(self.width)
        if op == "eq":
            return 1 if a == b else 0
        if op == "ne":
            return 1 if a != b else 0
        if op == "lt":
            return 1 if a < b else 0
        if op == "le":
            return 1 if a <= b else 0
        if op == "gt":
            return 1 if a > b else 0
        if op == "ge":
            return 1 if a >= b else 0
        if op == "shl":
            return (a << b) & mask_for(self.width)
        if op == "shr":
            return a >> b
        raise AssertionError(op)

    def __repr__(self) -> str:
        return f"BinaryOp({self.op}, {self.a!r}, {self.b!r})"


class Mux(Node):
    """``sel ? if_true : if_false`` (sel is 1-bit; nonzero selects true)."""

    __slots__ = ("sel", "if_true", "if_false")
    kind = "mux"

    def __init__(self, sel, if_true, if_false):
        self.sel = _coerce(sel)
        t = _coerce(if_true)
        f = _coerce(if_false)
        width = max(t.width, f.width)
        self.if_true = t.zext(width) if t.width < width else t
        self.if_false = f.zext(width) if f.width < width else f
        self.width = width

    def operands(self):
        return (self.sel, self.if_true, self.if_false)

    def eval_op(self, vals: Sequence[int]) -> int:
        return vals[1] if vals[0] != 0 else vals[2]

    def __repr__(self) -> str:
        return f"Mux({self.sel!r}, {self.if_true!r}, {self.if_false!r})"


class Slice(Node):
    """Bit slice ``a[hi:lo]`` (inclusive bounds, Verilog convention)."""

    __slots__ = ("a", "hi", "lo")
    kind = "slice"

    def __init__(self, a, hi: int, lo: int):
        self.a = _coerce(a)
        if not (0 <= lo <= hi < self.a.width):
            raise WidthError(
                f"slice [{hi}:{lo}] out of range for width {self.a.width}"
            )
        self.hi = hi
        self.lo = lo
        self.width = hi - lo + 1

    def operands(self):
        return (self.a,)

    def eval_op(self, vals: Sequence[int]) -> int:
        return (vals[0] >> self.lo) & mask_for(self.width)

    def __repr__(self) -> str:
        return f"Slice({self.a!r}, {self.hi}, {self.lo})"


class Concat(Node):
    """Concatenation; ``parts[0]`` is the most significant."""

    __slots__ = ("parts",)
    kind = "concat"

    def __init__(self, parts: Iterable):
        self.parts: Tuple[Node, ...] = tuple(_coerce(p) for p in parts)
        if not self.parts:
            raise ValueError("Concat needs at least one part")
        self.width = sum(p.width for p in self.parts)

    def operands(self):
        return self.parts

    def eval_op(self, vals: Sequence[int]) -> int:
        acc = 0
        for part, v in zip(self.parts, vals):
            acc = (acc << part.width) | v
        return acc

    def __repr__(self) -> str:
        return f"Concat({list(self.parts)!r})"


class MemRead(Node):
    """Combinational (asynchronous) read of a memory at ``addr``."""

    __slots__ = ("mem", "addr")
    kind = "memread"

    def __init__(self, mem, addr):
        self.mem = mem
        self.addr = _coerce(addr)
        self.width = mem.width

    def operands(self):
        return (self.addr,)

    def eval_op(self, vals: Sequence[int]) -> int:  # pragma: no cover
        raise RuntimeError("MemRead is resolved by the simulator environment")

    def __repr__(self) -> str:
        return f"MemRead({self.mem.name}, {self.addr!r})"


class Downgrade(Node):
    """Explicit downgrade marker (declassification or endorsement).

    Semantically the identity on its operand; the IFC checker treats it as
    the *only* legal way to weaken a label, validating the nonmalleable
    downgrading conditions (Eq. (1) of the paper) at the marker.

    ``kind_`` is ``"declassify"`` (confidentiality) or ``"endorse"``
    (integrity).  ``target`` is the label after downgrading and
    ``authority`` the label of the principal performing it.
    """

    __slots__ = ("a", "kind_", "target", "authority")
    kind = "downgrade"

    def __init__(self, a, kind_: str, target, authority):
        if kind_ not in ("declassify", "endorse"):
            raise ValueError(f"unknown downgrade kind {kind_!r}")
        self.a = _coerce(a)
        self.kind_ = kind_
        self.target = target
        self.authority = authority
        self.width = self.a.width

    def operands(self):
        return (self.a,)

    def eval_op(self, vals: Sequence[int]) -> int:
        return vals[0]

    def __repr__(self) -> str:
        return f"Downgrade({self.kind_}, {self.a!r})"


# -- convenience constructors -------------------------------------------------

def mux(sel, if_true, if_false) -> Mux:
    """Functional mux constructor."""
    return Mux(sel, if_true, if_false)


def cat(*parts) -> Node:
    """Concatenate values, most-significant first."""
    if len(parts) == 1:
        return _coerce(parts[0])
    return Concat(parts)


def lit(value: int, width: int) -> Const:
    """Width-annotated literal."""
    return Const(value, width)


def declassify(value, target, authority) -> Downgrade:
    """Declassify ``value`` to confidentiality of ``target`` under ``authority``."""
    return Downgrade(value, "declassify", target, authority)


def endorse(value, target, authority) -> Downgrade:
    """Endorse ``value`` to integrity of ``target`` under ``authority``."""
    return Downgrade(value, "endorse", target, authority)


def mux_case(default, cases) -> Node:
    """Priority mux from a list of ``(condition, value)`` pairs.

    Earlier entries take priority, matching a ``when/elsewhen`` chain.
    """
    result = _coerce(default)
    for cond, value in reversed(list(cases)):
        result = Mux(cond, value, result)
    return result


def _balanced_reduce(op: str, items: List[Node]) -> Node:
    """Reduce as a balanced tree (logarithmic logic depth)."""
    while len(items) > 1:
        nxt = []
        for i in range(0, len(items) - 1, 2):
            nxt.append(BinaryOp(op, items[i], items[i + 1]))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def all_of(*conds) -> Node:
    """AND-reduce conditions as a balanced tree (empty list is constant 1)."""
    items = [_coerce(c) for c in conds]
    if not items:
        return Const(1, 1)
    return _balanced_reduce("and", items)


def any_of(*conds) -> Node:
    """OR-reduce conditions as a balanced tree (empty list is constant 0)."""
    items = [_coerce(c) for c in conds]
    if not items:
        return Const(0, 1)
    return _balanced_reduce("or", items)


def walk(roots: Iterable[Node]) -> List[Node]:
    """Return all nodes reachable from ``roots`` in reverse-topological
    (operands-first) order, each exactly once."""
    order: List[Node] = []
    seen = set()
    stack: List[Tuple[Node, bool]] = [(r, False) for r in roots]
    while stack:
        node, expanded = stack.pop()
        nid = id(node)
        if expanded:
            order.append(node)
            continue
        if nid in seen:
            continue
        seen.add(nid)
        stack.append((node, True))
        for op in node.operands():
            if id(op) not in seen:
                stack.append((op, False))
    return order
