"""Module base class and the ``when``/``elsewhen``/``otherwise`` builder.

Hardware construction is single-threaded and sequential, so the active
conditional context is kept in a module-level stack (the same approach the
Chisel builder takes).  Every recorded assignment captures the condition
stack active at that point; elaboration later folds each signal's driver
list into one mux tree.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Tuple

from .nodes import HdlError, Node, UnaryOp, UnknownSignalError, _coerce, all_of

# -- global conditional-assignment context ------------------------------------

_ACTIVE_CONDS: List[Node] = []
# _CHAINS[d] holds the conditions already consumed by the when/elsewhen chain
# that most recently completed at nesting depth d.
_CHAINS: List[List[Node]] = []


def current_conditions() -> Tuple[Node, ...]:
    """The tuple of ``when`` conditions guarding the current statement."""
    return tuple(_ACTIVE_CONDS)


def reset_conditional_context() -> None:
    """Clear any lingering when/elsewhen chain state.

    Called when a new top-level module starts construction so that a
    previous module's chains can never leak into this one's
    ``otherwise`` blocks.
    """
    if _ACTIVE_CONDS:
        raise HdlError(
            "module constructed inside a when() block; construct modules "
            "at statement level"
        )
    _CHAINS.clear()


def _push_cond(cond: Node) -> None:
    _ACTIVE_CONDS.append(cond)


def _pop_cond() -> None:
    _ACTIVE_CONDS.pop()


@contextlib.contextmanager
def when(cond):
    """Open a conditional region; starts a new when/elsewhen chain."""
    cond = _coerce(cond)
    if cond.width != 1:
        cond = cond.red_or()
    depth = len(_ACTIVE_CONDS)
    del _CHAINS[depth:]
    _CHAINS.append([cond])
    _push_cond(cond)
    try:
        yield
    finally:
        _pop_cond()


@contextlib.contextmanager
def elsewhen(cond):
    """Continue the most recent when-chain at this nesting depth."""
    cond = _coerce(cond)
    if cond.width != 1:
        cond = cond.red_or()
    depth = len(_ACTIVE_CONDS)
    if len(_CHAINS) <= depth or not _CHAINS[depth]:
        raise HdlError("elsewhen without a preceding when at this nesting level")
    priors = list(_CHAINS[depth])
    _CHAINS[depth].append(cond)
    combined = all_of(*[UnaryOp("not", p) for p in priors], cond)
    _push_cond(combined)
    try:
        yield
    finally:
        _pop_cond()


@contextlib.contextmanager
def otherwise():
    """The final arm of the most recent when-chain at this nesting depth."""
    depth = len(_ACTIVE_CONDS)
    if len(_CHAINS) <= depth or not _CHAINS[depth]:
        raise HdlError("otherwise without a preceding when at this nesting level")
    priors = list(_CHAINS[depth])
    combined = all_of(*[UnaryOp("not", p) for p in priors])
    _push_cond(combined)
    try:
        yield
    finally:
        _pop_cond()


class Module:
    """Base class for hardware modules.

    Subclasses declare ports, state, and logic in ``__init__`` (after
    calling ``super().__init__(name)``), using :meth:`input`,
    :meth:`output`, :meth:`wire`, :meth:`reg`, :meth:`mem`, and the
    ``when`` builders.  Submodules are attached with :meth:`submodule`.
    """

    def __init__(self, name: str):
        reset_conditional_context()
        self.name = name
        self.inst_name = name
        self.parent: Optional[Module] = None
        self.children: List[Module] = []
        self.signals: List = []
        self.mems: List = []
        self._names = set()
        self.meta = {}

    # -- hierarchy ----------------------------------------------------------
    @property
    def path(self) -> str:
        if self.parent is None:
            return self.inst_name
        return f"{self.parent.path}.{self.inst_name}"

    def submodule(self, child: "Module", name: Optional[str] = None) -> "Module":
        """Attach ``child`` as a submodule instance and return it."""
        if child.parent is not None:
            raise HdlError(f"module {child.name} already has a parent")
        inst = name or child.name
        base, n = inst, 1
        while inst in self._names:
            inst = f"{base}_{n}"
            n += 1
        self._names.add(inst)
        child.inst_name = inst
        child.parent = self
        self.children.append(child)
        return child

    # -- declarations ---------------------------------------------------------
    def _check_name(self, name: str) -> str:
        if name in self._names:
            raise HdlError(f"duplicate name {name!r} in module {self.path}")
        self._names.add(name)
        return name

    def input(self, name: str, width: int, label=None):
        from .signal import Signal, SignalKind

        sig = Signal(self._check_name(name), width, SignalKind.INPUT, self, label=label)
        self.signals.append(sig)
        return sig

    def output(self, name: str, width: int, label=None, default=None):
        from .signal import Signal, SignalKind

        sig = Signal(
            self._check_name(name), width, SignalKind.OUTPUT, self,
            label=label, default=default,
        )
        self.signals.append(sig)
        return sig

    def wire(self, name: str, width: int, label=None, default=None):
        from .signal import Signal, SignalKind

        sig = Signal(
            self._check_name(name), width, SignalKind.WIRE, self,
            label=label, default=default,
        )
        self.signals.append(sig)
        return sig

    def reg(self, name: str, width: int, init: int = 0, label=None):
        from .signal import Signal, SignalKind

        sig = Signal(
            self._check_name(name), width, SignalKind.REG, self,
            label=label, init=init,
        )
        self.signals.append(sig)
        return sig

    def mem(self, name: str, depth: int, width: int, init=None, label=None,
            cell_labels=None):
        from .memory import Mem

        m = Mem(self._check_name(name), depth, width, self, init=init,
                label=label, cell_labels=cell_labels)
        self.mems.append(m)
        return m

    def rom(self, name: str, contents, width: int, label=None):
        m = self.mem(name, len(contents), width, init=list(contents), label=label)
        return m

    # -- queries ----------------------------------------------------------------
    def all_modules(self) -> List["Module"]:
        """This module and all descendants, preorder."""
        out = [self]
        for child in self.children:
            out.extend(child.all_modules())
        return out

    def find_signal(self, path: str):
        """Look up a signal by hierarchical path relative to this module."""
        for mod in self.all_modules():
            for sig in mod.signals:
                if sig.path == f"{self.path}.{path}" or sig.path == path:
                    return sig
        raise UnknownSignalError(path, f"module {self.path!r}")

    def __repr__(self) -> str:
        return f"<Module {self.path}>"
