#!/usr/bin/env python3
"""The §3.1 pipeline-stall covert channel, end to end.

Alice's reader withholds output readiness to modulate the shared
pipeline's timing; Eve times her own encryptions and decodes a secret
message — on the baseline.  On the protected design the Fig. 8 meet
check denies stalls that would touch Eve's blocks, and the channel's
mutual information drops to zero.

The demo ends by handing the same experiment to the leakage observatory
(:mod:`repro.obs.leakage`): a seeded paired campaign whose Welch t-test
and mutual-information estimate turn "Eve decoded the message" into a
quantitative, thresholded verdict.

Run:  python examples/covert_channel_demo.py
"""

from repro.attacks.timing_channel import run_covert_channel
from repro.obs.leakage import run_paired_campaign

MESSAGE = "HI"


def to_bits(text: str):
    bits = []
    for ch in text.encode():
        bits.extend((ch >> (7 - i)) & 1 for i in range(8))
    return bits


def from_bits(bits) -> str:
    out = bytearray()
    for i in range(0, len(bits) - 7, 8):
        byte = 0
        for b in bits[i:i + 8]:
            byte = (byte << 1) | b
        out.append(byte)
    return out.decode(errors="replace")


def main() -> None:
    secret = to_bits(MESSAGE)
    print(f"Alice wants to leak {MESSAGE!r} "
          f"({len(secret)} bits) to Eve through the shared pipeline.\n")

    for protected in (False, True):
        name = "PROTECTED" if protected else "BASELINE"
        print(f"--- {name} accelerator ---")
        result = run_covert_channel(protected, secret, stall_cycles=16)
        decoded = from_bits(result.decoded_bits)
        lat0 = sum(result.latencies_zero) / len(result.latencies_zero)
        lat1 = sum(result.latencies_one) / len(result.latencies_one)
        print(f"  Eve's probe latency: 0-bits ~{lat0:.1f} cycles, "
              f"1-bits ~{lat1:.1f} cycles")
        print(f"  decoded: {decoded!r}  "
              f"(accuracy {result.accuracy:.0%}, "
              f"mutual information {result.mutual_information():.3f} bits/bit)")
        print()

    print("baseline leaks the message; the protected design's stall meet")
    print("check (Fig. 8) silences the channel — Alice's unread blocks go")
    print("to her own holding-buffer slot instead of freezing the pipe.\n")

    print("--- leakage observatory verdict (repro.obs.leakage) ---")
    campaign = run_paired_campaign(scenario="stall", trials=8,
                                   stall_cycles=16)
    for name, report in (("baseline ", campaign.baseline),
                         ("protected", campaign.protected)):
        obs = report.observable("probe_latency")
        print(f"  {name}: t={obs.ttest.t:+.2f} "
              f"(threshold |t|>{obs.t_threshold:g}), "
              f"MI={obs.mi:.3f} bits -> "
              f"{'LEAK' if obs.leaky else 'clean'}")
    print("  detector verdict: "
          + ("baseline channel detected, protected clean — as the paper "
             "claims" if campaign.ok else "UNEXPECTED"))


if __name__ == "__main__":
    main()
