#!/usr/bin/env python3
"""Multi-tenant cloud scenario — the paper's motivating workload.

"Multiple users in the cloud share the same AES accelerator to process
encryption requests in the SSL protocol."  Three tenants with their own
session keys stream interleaved encryption jobs through one shared,
fine-grained-pipelined accelerator (Fig. 2 / Fig. 7):

* blocks from different tenants coexist inside the pipeline, one issue
  per cycle — no drain/refill between users;
* every response routes back to its owner by security tag;
* the run is compared against the coarse-grained sharing model the
  paper's introduction criticises.

Run:  python examples/multi_tenant_cloud.py
"""

from repro.aes import encrypt_block
from repro.soc import SoCSystem, mixed_workload

BLOCKS_PER_TENANT = 8


def main() -> None:
    print("bringing up the SoC (protected accelerator + 4 labelled users)...")
    soc = SoCSystem(protected=True)
    soc.provision_keys()
    tenants = [("alice", 1), ("bob", 2), ("charlie", 3)]

    print(f"submitting {BLOCKS_PER_TENANT} interleaved TLS-record blocks "
          f"per tenant ({len(tenants)} tenants)...")
    workload = mixed_workload(tenants, BLOCKS_PER_TENANT, seed=2026)
    start = soc.driver.sim.cycle
    soc.submit_all(workload)
    soc.drain()
    fine_cycles = soc.driver.sim.cycle - start

    print("\nper-tenant results:")
    all_ok = True
    for name, _slot in tenants:
        results = soc.results_for(name)
        ok = all(
            r.user == name
            and r.result == encrypt_block(r.data, soc.principals[name].key)
            for r in results
        )
        latencies = [r.latency for r in results]
        print(f"  {name:8s} {len(results)} blocks, "
              f"latency {min(latencies)}..{max(latencies)} cycles, "
              f"routed+correct: {ok}")
        all_ok &= ok

    total = BLOCKS_PER_TENANT * len(tenants)
    switches = total - 1  # interleaved arrival = switch on every block
    coarse = total + switches * 30 + 30
    print(f"\nfine-grained sharing : {fine_cycles} cycles for {total} blocks")
    print(f"coarse-grained model : {coarse} cycles "
          f"(drain 30-cycle pipeline per user switch)")
    print(f"speedup              : {coarse / fine_cycles:.1f}x")
    print(f"security counters    : {soc.counters()}")
    assert all_ok
    print("OK — isolation held while the pipeline stayed full.")


if __name__ == "__main__":
    main()
