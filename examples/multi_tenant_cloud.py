#!/usr/bin/env python3
"""Multi-tenant cloud scenario — the paper's motivating workload.

"Multiple users in the cloud share the same AES accelerator to process
encryption requests in the SSL protocol."  Three tenants with their own
session keys stream interleaved encryption jobs through one shared,
fine-grained-pipelined accelerator (Fig. 2 / Fig. 7):

* blocks from different tenants coexist inside the pipeline, one issue
  per cycle — no drain/refill between users;
* every response routes back to its owner by security tag;
* the run is compared against the coarse-grained sharing model the
  paper's introduction criticises.

The whole run is telemetry-enabled (``repro.obs``): a second phase with
a slow polling reader exercises the holding buffer and the Fig. 8 stall
machinery, a third phase injects a single-event upset that freezes the
pipeline and lets the SoC watchdog/retry/quarantine layer recover the
in-flight work on a spare accelerator, a fourth phase scales the same
core out into a two-shard fleet that keeps serving through a worker
kill and an injected pipeline wedge, a fifth phase replays that chaos
scenario under the **fleet observatory** — trace ids over the shard
pipes, worker span/metric deltas harvested per round, burn-rate alert
episodes attributed to the seeded chaos — and the run exports
machine-readable evidence: a Prometheus metrics dump, Chrome
trace-event timelines (open them in ``chrome://tracing`` or
https://ui.perfetto.dev; ``fleet_trace.json`` shows the kill reclaim
in-flight requests across process tracks), and a security-event JSONL
stream showing the enforcement points firing.

Run:  python examples/multi_tenant_cloud.py [output-dir]
"""

import json
import os
import sys

import repro.obs as obs
from repro.aes import encrypt_block
from repro.faults import Fault, FaultKind, FaultPlan
from repro.obs.simhooks import publish_sim_metrics
from repro.soc import SoCSystem, encrypt_stream, mixed_workload, random_blocks
from repro.soc.fleet import run_fleet_gate

BLOCKS_PER_TENANT = 8


def main(out_dir: str = "telemetry_out") -> None:
    telemetry = obs.enable()
    print("bringing up the SoC (protected accelerator + 4 labelled users, "
          "telemetry on)...")
    # fault_targets instruments the advance net for phase 3; with no plan
    # loaded the instrumented design is cycle-exact with the pristine one
    soc = SoCSystem(protected=True, fault_targets=["aes.advance"],
                    max_retries=2, quarantine_threshold=2, max_spares=1)
    soc.provision_keys()
    tenants = [("alice", 1), ("bob", 2), ("charlie", 3)]

    print(f"submitting {BLOCKS_PER_TENANT} interleaved TLS-record blocks "
          f"per tenant ({len(tenants)} tenants)...")
    submitted = {name: [] for name, _ in tenants}

    def submit(requests):
        for r in requests:
            submitted[r.user].append(r.data)
        soc.submit_all(requests)

    workload = mixed_workload(tenants, BLOCKS_PER_TENANT, seed=2026)
    start = soc.driver.sim.cycle
    submit(workload)
    soc.drain()
    fine_cycles = soc.driver.sim.cycle - start

    # phase 2: a slow polling host (misses every other read slot) — the
    # holding buffer fills, stalls are requested, and the meet check
    # grants them only when no other tenant's blocks share the pipeline
    print("phase 2: bursty tail behind a slow reader (holding buffer + "
          "stall path)...")
    soc.reader_stutter = 2
    submit(mixed_workload(tenants, BLOCKS_PER_TENANT, seed=2027))
    soc.drain()
    # lone-user tail: with only alice's blocks in flight the meet check
    # can *grant* her stall request (it is denied while tenants share)
    submit(encrypt_stream("alice", 1, random_blocks(12, seed=7)))
    soc.drain()
    soc.reader_stutter = 0

    # phase 3: a single-event upset sticks the pipeline-advance net at 0 —
    # the accelerator freezes mid-burst.  The per-request deadline trips
    # the watchdog, retries back off, the faulted part is quarantined, and
    # the outstanding blocks re-issue on a freshly provisioned spare.
    print("phase 3: injected SEU freezes the pipeline (watchdog -> "
          "retry -> quarantine -> spare)...")
    soc.request_deadline = 150
    soc.driver.sim.load_fault_plan(FaultPlan([
        Fault("aes.advance", FaultKind.STUCK_AT_0, 1,
              cycle=soc.driver.sim.cycle + 5, duration=10 ** 6)]))
    phase3 = encrypt_stream("alice", 1, random_blocks(2, seed=8))
    phase3 += encrypt_stream("bob", 2, random_blocks(2, seed=9))
    submit(phase3)
    soc.drain(max_cycles=10000)
    soc.request_deadline = None
    recovered = [r for r in phase3 if r.status == "delivered"]
    print(f"  watchdog trips={soc.watchdog_trips} "
          f"retries={sum(r.retries for r in phase3)} "
          f"quarantines={soc.quarantines} spares_used={soc.spares_used}")
    print(f"  {len(recovered)}/{len(phase3)} upset-era blocks recovered "
          f"(max attempts {max(r.attempts for r in phase3)}); "
          f"terminal statuses: "
          f"{sorted({r.status for r in phase3})}")
    assert soc.quarantines == 1 and soc.spares_used == 1
    assert recovered and all(r.is_terminal for r in phase3)
    assert any(r.attempts > 1 for r in recovered)

    # isolation check: every delivered block must be the encryption of one
    # of the *owner's own* plaintexts under the *owner's* key.  (Exact
    # request<->response pairing can desynchronise once the holding buffer
    # drops a block — availability traded for security, by design — but
    # no tenant may ever receive another tenant's ciphertext.)
    print("\nper-tenant results:")
    all_ok = True
    expected = {
        name: {encrypt_block(d, soc.principals[name].key)
               for d in submitted[name]}
        for name, _slot in tenants
    }
    for name, _slot in tenants:
        results = soc.results_for(name)
        others = set().union(
            *(expected[o] for o, _ in tenants if o != name))
        ok = all(
            r.user == name
            and r.result in expected[name]
            and r.result not in others
            for r in results
        )
        latencies = [r.latency for r in results]
        print(f"  {name:8s} {len(results)} blocks delivered, "
              f"latency {min(latencies)}..{max(latencies)} cycles, "
              f"isolated+correct: {ok}")
        all_ok &= ok
    if soc.dropped_requests:
        print(f"  ({len(soc.dropped_requests)} blocks dropped by the "
              "holding buffer under backpressure — availability, never "
              "confidentiality)")

    total = BLOCKS_PER_TENANT * len(tenants)
    switches = total - 1  # interleaved arrival = switch on every block
    coarse = total + switches * 30 + 30
    print(f"\nfine-grained sharing : {fine_cycles} cycles for {total} blocks")
    print(f"coarse-grained model : {coarse} cycles "
          f"(drain 30-cycle pipeline per user switch)")
    print(f"speedup              : {coarse / fine_cycles:.1f}x")
    print(f"security counters    : {soc.counters()}")

    # phase 4: scale out.  The same accelerator core becomes a shard in a
    # small fleet: seeded open-loop traffic from four tenant classes, a
    # chaos schedule that kills one worker mid-flight and wedges another,
    # and a supervisor that must land every request on a terminal status
    # with the security verdicts unchanged.
    print("\nphase 4: two-shard fleet under chaos (kill + wedge, "
          "inline workers)...")
    fleet_report = run_fleet_gate(
        seed=2026, shards=2, horizon=512, tenants=4,
        workers="inline", kills=1, wedges=1, check_ifc=False)
    for line in fleet_report.render().splitlines():
        print(f"  {line}")
    assert fleet_report.conservation_ok and fleet_report.security_ok
    assert fleet_report.to_dict()["supervisor"]["kills_detected"] >= 1

    # phase 5: the same chaos scenario, observed.  Every admitted
    # request carries a trace id across the shard pipes, workers
    # piggyback span/metric deltas on their round replies, and the
    # coordinator stitches one Chrome trace — coordinator and shard
    # process tracks, flow arrows admission -> shard -> delivery, chaos
    # kills and wedges as instant annotations — while the burn-rate
    # engine turns the disruption into alert episodes that must
    # attribute to the seeded schedule with perfect precision/recall.
    print("\nphase 5: fleet observatory over the same scenario "
          "(stitched trace + burn-rate alerts)...")
    from repro.obs.fleet import run_fleet_obs_gate

    obs_report, fobs = run_fleet_obs_gate(
        seed=2026, shards=2, horizon=512, tenants=4,
        workers="inline", kills=1, wedges=1, identity=False)
    for line in obs_report.render().splitlines():
        print(f"  {line}")
    assert obs_report.ok()

    publish_sim_metrics(soc.driver.sim, telemetry.metrics)
    counts = telemetry.security.counts()
    print(f"security events      : {counts}")
    stalls = (counts.get("stall_granted", 0) + counts.get("stall_denied", 0))
    assert stalls >= 1, "expected the stall path to fire under backpressure"
    assert counts.get("declassification", 0) >= 1, \
        "expected nonmalleable releases on the encrypt path"

    paths = telemetry.write_all(out_dir)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind:15s} {path}")
    fleet_trace = os.path.join(out_dir, "fleet_trace.json")
    with open(fleet_trace, "w") as f:
        json.dump(fobs.to_chrome_trace(), f)
    print(f"wrote {'fleet_trace':15s} {fleet_trace}")

    assert all_ok
    print("OK — isolation held while the pipeline stayed full, and the "
          "telemetry layer captured the evidence.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
