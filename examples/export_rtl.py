#!/usr/bin/env python3
"""Export the accelerators as synthesizable Verilog.

The whole design — both accelerators and every submodule — elaborates to
a netlist that :mod:`repro.hdl.verilog` prints as flattened structural
Verilog-2001, with security labels and downgrade points preserved as
comments for review.  Hand the output to any standard FPGA/ASIC flow.

Run:  python examples/export_rtl.py [output-dir]
"""

import os
import sys

from repro.accel import (
    AesAcceleratorBaseline,
    AesAcceleratorProtected,
    AesEngineWide,
)
from repro.accel.scratchpad import KeyScratchpad
from repro.hdl import elaborate, to_verilog


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "rtl_out"
    os.makedirs(outdir, exist_ok=True)

    targets = [
        ("aes_baseline", AesAcceleratorBaseline(), "the unprotected design"),
        ("aes_protected", AesAcceleratorProtected(),
         "tags + checks + declassifier"),
        ("aes256_wide", AesEngineWide(256), "42-stage AES-256 engine"),
        ("key_scratchpad", KeyScratchpad(protected=True),
         "the Fig. 5 tagged scratchpad alone"),
    ]
    for name, module, blurb in targets:
        netlist = elaborate(module)
        source = to_verilog(netlist, name)
        path = os.path.join(outdir, f"{name}.v")
        with open(path, "w") as f:
            f.write(source)
        stats = netlist.stats()
        print(f"{path:32s} {source.count(chr(10)):6d} lines   "
              f"({stats['regs']} regs, {stats['mems']} mems, "
              f"{stats['nodes']} nodes)  — {blurb}")

    print("\nsecurity annotations survive as comments, e.g.:")
    sample = to_verilog(KeyScratchpad(protected=True))
    for line in sample.splitlines():
        if "label" in line or "downgrade" in line:
            print(f"  {line.strip()}")
            break
    print("done.")


if __name__ == "__main__":
    main()
