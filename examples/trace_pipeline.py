#!/usr/bin/env python3
"""Capture Fig. 7 as a waveform: blocks and their security tags moving
through the pipeline in lockstep.

Interleaves two users' blocks, records the valid/tag pair of a few
stages plus the exit, prints a text lane view, and writes a VCD you can
open in GTKWave.

Run:  python examples/trace_pipeline.py [out.vcd]
"""

import sys

from repro.accel import AesPipeline, OP_ENC, user_label
from repro.hdl import Simulator
from repro.hdl.sim.trace import Trace

ALICE = user_label("p0").encode()
EVE = user_label("p1").encode()
NAMES = {0: "..", ALICE: "A ", EVE: "E "}


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "pipeline.vcd"
    sim = Simulator(AesPipeline(protected=True))
    sim.poke("pipe.advance", 1)

    # key both users' slots
    for slot, key, tag in ((1, 0x11111111, ALICE), (2, 0x22222222, EVE)):
        sim.poke("pipe.kx_start", 1)
        sim.poke("pipe.kx_slot", slot)
        sim.poke("pipe.kx_key", key)
        sim.poke("pipe.kx_key_tag", tag)
        sim.step()
        sim.poke("pipe.kx_start", 0)
        sim.run_until("pipe.kx_busy", 0, 50)

    watch = []
    for stage in ("sa1", "sc3", "sb6", "sc10"):
        watch += [f"pipe.{stage}.valid_o", f"pipe.{stage}.tag_o"]
    watch += ["pipe.out_valid", "pipe.out_tag"]
    trace = Trace(sim, watch)

    # interleave A E A E ... with a bubble now and then
    pattern = [ALICE, EVE, ALICE, EVE, None, ALICE, EVE, None, EVE, ALICE]
    for i, who in enumerate(pattern):
        if who is None:
            sim.poke("pipe.in_valid", 0)
        else:
            sim.poke("pipe.in_valid", 1)
            sim.poke("pipe.in_op", OP_ENC)
            sim.poke("pipe.in_slot", 1 if who == ALICE else 2)
            sim.poke("pipe.in_user", who)
            sim.poke("pipe.in_data", 0x1000 + i)
        sim.step()
    sim.poke("pipe.in_valid", 0)
    sim.step(35)

    print("cycle  sa1  sc3  sb6  sc10 out   (A=alice, E=eve, ..=bubble)")
    for cycle, row in zip(trace.cycles, trace.rows):
        lanes = []
        for i in range(0, 10, 2):
            valid, tag = row[i], row[i + 1]
            # pipeline tags are user⊔key joins; identify by vouch nibble
            owner = {1: "A ", 2: "E "}.get(tag & 0xF, "? ") if valid else ".."
            lanes.append(owner)
        print(f"{cycle:5d}  " + "   ".join(lanes))

    trace.write_vcd(out)
    print(f"\nwrote {out} ({len(trace)} cycles, {len(watch)} signals)")
    print("open it with: gtkwave " + out)


if __name__ == "__main__":
    main()
