#!/usr/bin/env python3
"""Design-time security audit — the paper's core methodology, §3/§4.

Three acts:

1. **Policy checking.**  Every module of the protected accelerator is
   verified against its information-flow labels, modularly (the way a
   security-typed HDL scales to a 30-stage pipeline).
2. **Flaw hunting.**  The same checker is pointed at deliberately flawed
   variants — the Fig. 3 cross-way write, the Fig. 6 key-dependent
   timing, and a data-leak hardware Trojan — and prints the label errors
   that expose each one, with the exact runtime case that breaks.
3. **The audit.**  The unprotected baseline is annotated with the
   deployment's intended labels and checked flat: every §3.1
   vulnerability class surfaces with no simulation and no attack
   knowledge.

Every checker verdict is also captured on the ``repro.obs`` security
stream — pass an output path to keep the audit trail as JSONL evidence.

Run:  python examples/security_audit.py [audit.jsonl]
"""

import sys

import repro.obs as obs
from repro.accel.common import LATTICE
from repro.accel.key_expand_unit import KeyExpandUnit
from repro.accel.pipeline import AesPipeline
from repro.accel.protected import AesAcceleratorProtected
from repro.attacks.trojan import check_clean_stage, check_trojan_stage
from repro.eval.audit import classify_errors, run_audit
from repro.hdl import elaborate, elaborate_shallow
from repro.ifc.checker import IfcChecker
from repro.ifc.lattice import two_point
from repro.soc.cache_tags import CacheTags


def act1_verify_protected() -> None:
    print("=" * 70)
    print("Act 1 — verifying the protected design, module by module")
    print("=" * 70)
    jobs = [
        ("AES pipeline (modular)", elaborate_shallow(AesPipeline(True))),
        ("key expansion unit", elaborate(KeyExpandUnit(True))),
        ("top-level wiring (modular)",
         elaborate_shallow(AesAcceleratorProtected())),
    ]
    for name, netlist in jobs:
        rep = IfcChecker(netlist, LATTICE, max_hypotheses=1 << 20).check()
        print(f"  {name:28s} {'PASS' if rep.ok() else 'FAIL'} "
              f"({rep.checked_sinks} sinks, {rep.hypotheses_examined} cases, "
              f"{rep.downgrades_verified} downgrades reviewed)")


def act2_hunt_flaws() -> None:
    print()
    print("=" * 70)
    print("Act 2 — pointing the checker at planted flaws")
    print("=" * 70)

    lattice = two_point()
    rep = IfcChecker(elaborate(CacheTags(lattice, broken=True)), lattice).check()
    print("\n  Fig. 3 cache tags with a cross-way write:")
    for e in rep.errors[:2]:
        print(f"    {e!r}")

    rep = IfcChecker(
        elaborate(KeyExpandUnit(protected=True, timing_flaw=True)), LATTICE
    ).check()
    print("\n  Fig. 6 key-dependent expansion timing "
          f"({len(rep.errors)} errors; first two):")
    for e in rep.errors[:2]:
        print(f"    {e!r}")

    rep = check_trojan_stage()
    clean = check_clean_stage()
    print(f"\n  data-leak Trojan in a pipeline stage: "
          f"{len(rep.errors)} errors (honest stage: "
          f"{'clean' if clean.ok() else 'FAIL'}); first:")
    print(f"    {rep.errors[0]!r}")


def act3_audit_baseline() -> None:
    print()
    print("=" * 70)
    print("Act 3 — auditing the unprotected baseline")
    print("=" * 70)
    report = run_audit()
    classes = classify_errors(report)
    print(f"  {len(report.errors)} label errors across "
          f"{len(report.distinct_sinks())} sinks:")
    for cls, errors in classes.items():
        print(f"    {cls:22s} {len(errors)}")
    print("\n  every §3.1 vulnerability class found statically — no "
          "simulation, no attack knowledge.")


def main(audit_log: str = None) -> None:
    with obs.capture() as t:
        act1_verify_protected()
        act2_hunt_flaws()
        act3_audit_baseline()
    checks = t.security.filter("ifc_check")
    failed = sum(1 for e in checks if not e.detail.get("ok"))
    print(f"\n  audit trail: {len(checks)} checker verdicts captured "
          f"({failed} designs rejected)")
    if audit_log:
        t.security.write_jsonl(audit_log)
        print(f"  wrote {audit_log}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
