#!/usr/bin/env python3
"""Quickstart: bring up the protected AES accelerator and encrypt a block.

The flow a driver/OS would follow:

1. build the accelerator (cycle-accurate simulation of the RTL);
2. the supervisor allocates a key slot to a user (tagging its scratchpad
   cells — Fig. 5);
3. the user loads a key (two 64-bit cell writes; the engine expands it
   into round keys);
4. the user streams encrypt/decrypt requests through the 30-stage
   pipeline and collects tagged responses.

Run:  python examples/quickstart.py
"""

from repro.accel import (
    AcceleratorDriver,
    AesAcceleratorProtected,
    make_users,
)
from repro.aes import encrypt_block

KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
PLAINTEXT = 0x3243F6A8885A308D313198A2E0370734


def main() -> None:
    users = make_users()
    alice = users["u0"]

    print("building the protected accelerator (30-stage pipeline)...")
    driver = AcceleratorDriver(AesAcceleratorProtected())

    print("supervisor: allocating key slot 1 to alice")
    driver.allocate_slot(1, alice)

    print(f"alice: loading key {KEY:#034x}")
    driver.load_key(alice, 1, KEY)

    print(f"alice: encrypting {PLAINTEXT:#034x}")
    driver.set_reader(alice)
    ciphertext, latency = driver.encrypt_blocking(alice, 1, PLAINTEXT)

    expected = encrypt_block(PLAINTEXT, KEY)
    print(f"  -> ciphertext {ciphertext:#034x} after {latency} cycles")
    print(f"  reference     {expected:#034x}")
    assert ciphertext == expected, "hardware/reference mismatch!"

    print("alice: decrypting it back")
    driver.decrypt(alice, 1, ciphertext)
    driver.step(40)
    recovered = driver.take_responses()[-1].data
    print(f"  -> plaintext  {recovered:#034x}")
    assert recovered == PLAINTEXT

    counters = driver.counters()
    print(f"security counters: {counters}")
    print("OK — ciphertext matches FIPS-197 and the roundtrip closes.")


if __name__ == "__main__":
    main()
