#!/usr/bin/env python3
"""Encrypted storage over the accelerator — multi-block CBC through the
hardware pipeline.

The paper's intro names "encrypted data storage" as a canonical SoC use
of AES.  This example writes a "disk sector" through the accelerator in
CBC mode (chaining done by the storage driver, block encryption by the
hardware), reads it back through the decrypt path, and cross-checks the
whole thing against the pure-software implementation.

Run:  python examples/encrypted_storage.py
"""

from repro.accel import AcceleratorDriver, AesAcceleratorProtected, make_users
from repro.aes import cbc_encrypt, pad_pkcs7, unpad_pkcs7
from repro.soc.requests import blocks_to_message, message_blocks

KEY = 0x8899AABBCCDDEEFF0011223344556677
IV = 0x0F0E0D0C0B0A09080706050403020100
SECTOR = (
    b"-- journal sector 42 --\n"
    b"user=alice balance=1048576 nonce=7f3a\n"
    b"the quick brown fox jumps over the lazy accelerator\n"
)


class HardwareCbc:
    """CBC chaining in the driver, block E/D in the hardware."""

    def __init__(self, driver: AcceleratorDriver, user: int, slot: int):
        self.driver = driver
        self.user = user
        self.slot = slot

    def _block(self, op, data: int) -> int:
        if op == "enc":
            self.driver.encrypt(self.user, self.slot, data)
        else:
            self.driver.decrypt(self.user, self.slot, data)
        for _ in range(60):
            self.driver.step()
            got = self.driver.take_responses()
            if got:
                return got[-1].data
        raise TimeoutError("block never came back")

    def encrypt(self, data: bytes, iv: int) -> bytes:
        prev = iv
        out = []
        for block in message_blocks(pad_pkcs7(data)):
            prev = self._block("enc", block ^ prev)
            out.append(prev)
        return blocks_to_message(out)

    def decrypt(self, data: bytes, iv: int) -> bytes:
        prev = iv
        out = []
        for block in message_blocks(data):
            out.append(self._block("dec", block) ^ prev)
            prev = block
        return unpad_pkcs7(blocks_to_message(out))


def main() -> None:
    users = make_users()
    alice = users["u0"]
    print("provisioning the accelerator...")
    driver = AcceleratorDriver(AesAcceleratorProtected())
    driver.allocate_slot(1, alice)
    driver.load_key(alice, 1, KEY)
    driver.set_reader(alice)

    cbc = HardwareCbc(driver, alice, 1)
    print(f"writing a {len(SECTOR)}-byte sector through the hardware (CBC)...")
    ciphertext = cbc.encrypt(SECTOR, IV)
    print(f"  sector on disk: {ciphertext[:32].hex()}...")

    software = cbc_encrypt(pad_pkcs7(SECTOR), KEY, IV)
    assert ciphertext == software, "hardware CBC diverged from software!"
    print("  matches the software CBC implementation.")

    print("reading it back through the decrypt pipeline...")
    recovered = cbc.decrypt(ciphertext, IV)
    assert recovered == SECTOR
    print(f"  recovered {len(recovered)} bytes, e.g. "
          f"{recovered.splitlines()[1].decode()!r}")
    print(f"cycles spent: {driver.sim.cycle}")
    print("OK")


if __name__ == "__main__":
    main()
